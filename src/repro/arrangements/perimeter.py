"""Perimeter placement of I/O chiplets (Figure 2 / Section III-A).

The paper restricts its search to the identical *compute* chiplets and
assumes that the remaining chiplets (I/O drivers, memory controllers, ...)
are placed on the perimeter of the proposed arrangement, close to the
package border where the signal solder balls are.  This module implements
that step: given a compute arrangement, it surrounds the bounding box of
the compute placement with a ring of I/O chiplets and returns the combined
placement together with the compute-to-I/O adjacency.

The result is informational (the ICI proxies of the paper are defined on
the compute chiplets only), but it lets users reason about the full package
floorplan: total silicon area, package utilisation and which compute
chiplets get a direct edge to an I/O chiplet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrangements.base import Arrangement
from repro.geometry.adjacency import shared_edges
from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PerimeterPlan:
    """A compute arrangement surrounded by perimeter I/O chiplets.

    Attributes
    ----------
    arrangement:
        The original compute arrangement (unchanged).
    placement:
        Combined placement: the compute chiplets keep their original ids,
        the I/O chiplets get the following ids and the role ``"io"``.
    io_chiplet_ids:
        Ids of the added I/O chiplets.
    io_links:
        ``(compute_id, io_id)`` pairs for every compute chiplet that shares
        an edge with an I/O chiplet.
    """

    arrangement: Arrangement
    placement: ChipletPlacement
    io_chiplet_ids: tuple[int, ...]
    io_links: tuple[tuple[int, int], ...]

    @property
    def num_io_chiplets(self) -> int:
        """Number of I/O chiplets placed on the perimeter."""
        return len(self.io_chiplet_ids)

    def compute_chiplets_with_io_access(self) -> list[int]:
        """Compute chiplets that share an edge with at least one I/O chiplet."""
        return sorted({compute for compute, _ in self.io_links})

    def total_silicon_area(self) -> float:
        """Combined area of compute and I/O chiplets in mm²."""
        return self.placement.total_chiplet_area()

    def package_utilization(self) -> float:
        """Fraction of the overall bounding box covered by silicon."""
        return self.placement.utilization()


def _perimeter_positions(
    bounds: Rect, io_width: float, io_height: float, gap: float
) -> list[Rect]:
    """I/O chiplet rectangles lining the four sides of a bounding box."""
    rects: list[Rect] = []

    # Bottom and top rows.
    count_x = max(1, int(bounds.width // io_width))
    margin_x = (bounds.width - count_x * io_width) / 2.0
    for index in range(count_x):
        x = bounds.x + margin_x + index * io_width
        rects.append(Rect(x, bounds.y - gap - io_height, io_width, io_height))
        rects.append(Rect(x, bounds.y_max + gap, io_width, io_height))

    # Left and right columns.
    count_y = max(1, int(bounds.height // io_height))
    margin_y = (bounds.height - count_y * io_height) / 2.0
    for index in range(count_y):
        y = bounds.y + margin_y + index * io_height
        rects.append(Rect(bounds.x - gap - io_width, y, io_width, io_height))
        rects.append(Rect(bounds.x_max + gap, y, io_width, io_height))

    return rects


def add_perimeter_io_chiplets(
    arrangement: Arrangement,
    *,
    io_chiplet_width: float | None = None,
    io_chiplet_height: float | None = None,
    gap: float = 0.0,
) -> PerimeterPlan:
    """Surround a compute arrangement with perimeter I/O chiplets.

    Parameters
    ----------
    arrangement:
        The compute arrangement; it must carry a rectangular placement
        (every family except the honeycomb does).
    io_chiplet_width, io_chiplet_height:
        Footprint of the I/O chiplets; both default to the compute chiplet
        dimensions of the arrangement.
    gap:
        Clearance (mm) between the compute bounding box and the I/O ring.
        A gap of zero makes the I/O chiplets share edges with the outermost
        compute chiplets, which is what enables direct D2D links to them.
    """
    if arrangement.placement is None:
        raise ValueError(
            "perimeter I/O placement requires an arrangement with a rectangular "
            "placement (the honeycomb has none)"
        )
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    io_width = (
        io_chiplet_width if io_chiplet_width is not None else arrangement.chiplet_width
    )
    io_height = (
        io_chiplet_height if io_chiplet_height is not None else arrangement.chiplet_height
    )
    check_positive("io_chiplet_width", io_width)
    check_positive("io_chiplet_height", io_height)

    compute_placement = arrangement.placement
    bounds = compute_placement.bounding_box()

    combined = ChipletPlacement()
    for chiplet in compute_placement:
        combined.add(chiplet)

    next_id = max(compute_placement.chiplet_ids) + 1
    io_ids: list[int] = []
    for rect in _perimeter_positions(bounds, io_width, io_height, gap):
        # Skip positions that would overlap a compute chiplet (can happen for
        # non-rectangular outlines such as the HexaMesh's hexagon).
        if any(rect.overlaps(existing.rect) for existing in combined):
            continue
        combined.add(PlacedChiplet(chiplet_id=next_id, rect=rect, role="io"))
        io_ids.append(next_id)
        next_id += 1

    io_id_set = set(io_ids)
    io_links = tuple(
        (low, high) if high in io_id_set else (high, low)
        for low, high, _ in shared_edges(combined)
        if (low in io_id_set) != (high in io_id_set)
    )

    return PerimeterPlan(
        arrangement=arrangement,
        placement=combined,
        io_chiplet_ids=tuple(io_ids),
        io_links=io_links,
    )
