"""Factory helpers that dispatch to the individual arrangement generators."""

from __future__ import annotations

from typing import Callable

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.brickwall import generate_brickwall
from repro.arrangements.grid import DEFAULT_MAX_ASPECT_RATIO, generate_grid
from repro.arrangements.hexamesh import generate_hexamesh
from repro.arrangements.honeycomb import generate_honeycomb
from repro.utils.mathutils import balanced_factor_pair, is_hexamesh_count, is_perfect_square
from repro.utils.validation import check_positive_int

_GeneratorFn = Callable[..., Arrangement]


def classify_regularity(
    kind: ArrangementKind | str,
    num_chiplets: int,
    *,
    max_aspect_ratio: float = DEFAULT_MAX_ASPECT_RATIO,
) -> Regularity:
    """The best regularity class that ``num_chiplets`` admits for ``kind``.

    Preference order: regular, then semi-regular (grid / brickwall /
    honeycomb only, and only if the most balanced factorisation is within
    the aspect-ratio limit), then irregular.
    """
    kind = ArrangementKind.from_name(kind)
    check_positive_int("num_chiplets", num_chiplets)
    if kind is ArrangementKind.HEXAMESH:
        return Regularity.REGULAR if is_hexamesh_count(num_chiplets) else Regularity.IRREGULAR
    if is_perfect_square(num_chiplets):
        return Regularity.REGULAR
    factor_pair = balanced_factor_pair(num_chiplets)
    if (
        factor_pair is not None
        and factor_pair[0] != factor_pair[1]
        and factor_pair[1] / factor_pair[0] <= max_aspect_ratio
    ):
        return Regularity.SEMI_REGULAR
    return Regularity.IRREGULAR


def available_regularities(
    kind: ArrangementKind | str,
    num_chiplets: int,
    *,
    max_aspect_ratio: float = DEFAULT_MAX_ASPECT_RATIO,
) -> list[Regularity]:
    """Every regularity class that ``num_chiplets`` admits for ``kind``.

    Irregular is always available; regular and semi-regular are included
    when the chiplet count allows them.  The list is ordered from most to
    least regular.
    """
    kind = ArrangementKind.from_name(kind)
    check_positive_int("num_chiplets", num_chiplets)
    classes: list[Regularity] = []
    if kind is ArrangementKind.HEXAMESH:
        if is_hexamesh_count(num_chiplets):
            classes.append(Regularity.REGULAR)
    else:
        if is_perfect_square(num_chiplets):
            classes.append(Regularity.REGULAR)
        factor_pair = balanced_factor_pair(num_chiplets)
        if (
            factor_pair is not None
            and factor_pair[0] != factor_pair[1]
            and factor_pair[1] / factor_pair[0] <= max_aspect_ratio
        ):
            classes.append(Regularity.SEMI_REGULAR)
    classes.append(Regularity.IRREGULAR)
    return classes


def make_arrangement(
    kind: ArrangementKind | str,
    num_chiplets: int,
    regularity: Regularity | str | None = None,
    *,
    chiplet_width: float = 1.0,
    chiplet_height: float = 1.0,
    max_aspect_ratio: float = DEFAULT_MAX_ASPECT_RATIO,
) -> Arrangement:
    """Create an arrangement of any kind through a single entry point.

    Parameters
    ----------
    kind:
        One of ``"grid"``, ``"brickwall"``, ``"honeycomb"``, ``"hexamesh"``
        (or the corresponding :class:`ArrangementKind` member).
    num_chiplets:
        Number of compute chiplets.
    regularity:
        Requested regularity class; ``None`` picks the best available one.
    chiplet_width, chiplet_height:
        Chiplet footprint in millimetres (ignored by the honeycomb, whose
        chiplets are hexagons).
    max_aspect_ratio:
        Aspect-ratio limit for semi-regular layouts.
    """
    kind = ArrangementKind.from_name(kind)
    if kind is ArrangementKind.GRID:
        return generate_grid(
            num_chiplets,
            regularity,
            chiplet_width=chiplet_width,
            chiplet_height=chiplet_height,
            max_aspect_ratio=max_aspect_ratio,
        )
    if kind is ArrangementKind.BRICKWALL:
        return generate_brickwall(
            num_chiplets,
            regularity,
            chiplet_width=chiplet_width,
            chiplet_height=chiplet_height,
            max_aspect_ratio=max_aspect_ratio,
        )
    if kind is ArrangementKind.HONEYCOMB:
        return generate_honeycomb(num_chiplets, regularity)
    return generate_hexamesh(
        num_chiplets,
        regularity,
        chiplet_width=chiplet_width,
        chiplet_height=chiplet_height,
    )
