"""Coarse ASCII top views of placements.

Useful for terminals, logs and doctests where SVG output is impractical.
Each chiplet is drawn as a block of characters; the resolution is chosen so
that half-chiplet offsets (brickwall, HexaMesh) remain visible.
"""

from __future__ import annotations

from repro.geometry.placement import ChipletPlacement
from repro.utils.validation import check_positive_int


def ascii_placement(
    placement: ChipletPlacement,
    *,
    cell_width: int = 4,
    cell_height: int = 2,
) -> str:
    """Render a placement as ASCII art.

    Parameters
    ----------
    placement:
        The placement to draw.
    cell_width / cell_height:
        Number of characters used per chiplet width / height.  The
        defaults keep half-offsets visible while staying compact.
    """
    check_positive_int("cell_width", cell_width, minimum=2)
    check_positive_int("cell_height", cell_height, minimum=1)
    normalized = placement.normalized()
    bounds = normalized.bounding_box()
    chiplet_width = min(chiplet.rect.width for chiplet in normalized)
    chiplet_height = min(chiplet.rect.height for chiplet in normalized)
    columns = max(1, round(bounds.width / chiplet_width * cell_width))
    rows = max(1, round(bounds.height / chiplet_height * cell_height))

    canvas = [[" "] * (columns + 1) for _ in range(rows + 1)]
    for chiplet in normalized:
        rect = chiplet.rect
        col_start = round(rect.x / chiplet_width * cell_width)
        col_end = round(rect.x_max / chiplet_width * cell_width)
        row_start = round(rect.y / chiplet_height * cell_height)
        row_end = round(rect.y_max / chiplet_height * cell_height)
        label = str(chiplet.chiplet_id)
        for row in range(row_start, row_end):
            for col in range(col_start, col_end):
                boundary = (
                    row in (row_start, row_end - 1)
                    or col in (col_start, col_end - 1)
                )
                canvas[row][col] = "#" if boundary else "."
        # Place the chiplet id roughly in the middle of the block.
        mid_row = (row_start + row_end) // 2
        mid_col = (col_start + col_end - len(label)) // 2
        for offset, character in enumerate(label):
            if 0 <= mid_row < len(canvas) and 0 <= mid_col + offset < len(canvas[0]):
                canvas[mid_row][mid_col + offset] = character

    # Flip vertically so that larger y is drawn higher, as in a top view.
    lines = ["".join(row).rstrip() for row in reversed(canvas)]
    # Drop leading/trailing blank lines for compactness.
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
