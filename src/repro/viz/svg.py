"""SVG rendering of placements and bump-sector layouts.

The renderers emit plain SVG strings with no external dependencies so that
examples can produce figures in any environment.
"""

from __future__ import annotations

from repro.geometry.placement import ChipletPlacement
from repro.geometry.sectors import SectorLayout, SectorRole
from repro.utils.validation import check_positive

#: Colours per arrangement role / sector role.
_CHIPLET_FILL = "#9ecae1"
_CHIPLET_STROKE = "#3182bd"
_POWER_FILL = "#fdae6b"
_LINK_FILL = "#a1d99b"
_TEXT_COLOR = "#222222"


def _svg_header(width: float, height: float) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.1f}" '
        f'height="{height:.1f}" viewBox="0 0 {width:.1f} {height:.1f}">'
    )


def placement_svg(
    placement: ChipletPlacement,
    *,
    scale: float = 40.0,
    margin: float = 10.0,
    show_ids: bool = True,
) -> str:
    """Render a placement as an SVG top view (Figure 4 style).

    Parameters
    ----------
    placement:
        The chiplet placement to draw.
    scale:
        Pixels per millimetre.
    margin:
        Margin around the drawing in pixels.
    show_ids:
        Draw the chiplet id at the centre of each chiplet.
    """
    check_positive("scale", scale)
    normalized = placement.normalized()
    bounds = normalized.bounding_box()
    width = bounds.width * scale + 2 * margin
    height = bounds.height * scale + 2 * margin

    def to_pixel_y(y_mm: float, rect_height_mm: float) -> float:
        # Flip the y axis so the drawing matches the usual top-view convention.
        return height - margin - (y_mm + rect_height_mm) * scale

    parts = [_svg_header(width, height)]
    for chiplet in normalized:
        rect = chiplet.rect
        x = margin + rect.x * scale
        y = to_pixel_y(rect.y, rect.height)
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{rect.width * scale:.2f}" '
            f'height="{rect.height * scale:.2f}" fill="{_CHIPLET_FILL}" '
            f'stroke="{_CHIPLET_STROKE}" stroke-width="1"/>'
        )
        if show_ids:
            center_x = x + rect.width * scale / 2
            center_y = y + rect.height * scale / 2
            parts.append(
                f'<text x="{center_x:.2f}" y="{center_y:.2f}" font-size="{scale * 0.3:.1f}" '
                f'text-anchor="middle" dominant-baseline="central" fill="{_TEXT_COLOR}">'
                f"{chiplet.chiplet_id}</text>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


def sector_layout_svg(layout: SectorLayout, *, scale: float = 60.0, margin: float = 10.0) -> str:
    """Render a bump-sector layout as an SVG figure (Figure 5 style)."""
    check_positive("scale", scale)
    chiplet = layout.chiplet
    width = chiplet.width * scale + 2 * margin
    height = chiplet.height * scale + 2 * margin

    def transform(x_mm: float, y_mm: float) -> tuple[float, float]:
        return (
            margin + (x_mm - chiplet.x) * scale,
            height - margin - (y_mm - chiplet.y) * scale,
        )

    parts = [_svg_header(width, height)]
    for sector in layout.sectors:
        fill = _POWER_FILL if sector.role is SectorRole.POWER else _LINK_FILL
        points = " ".join(
            f"{transform(vertex.x, vertex.y)[0]:.2f},{transform(vertex.x, vertex.y)[1]:.2f}"
            for vertex in sector.vertices
        )
        parts.append(
            f'<polygon points="{points}" fill="{fill}" stroke="{_CHIPLET_STROKE}" '
            f'stroke-width="1"/>'
        )
        label = sector.link_direction or "power"
        center_x = sum(v.x for v in sector.vertices) / len(sector.vertices)
        center_y = sum(v.y for v in sector.vertices) / len(sector.vertices)
        pixel_x, pixel_y = transform(center_x, center_y)
        parts.append(
            f'<text x="{pixel_x:.2f}" y="{pixel_y:.2f}" font-size="{scale * 0.12:.1f}" '
            f'text-anchor="middle" dominant-baseline="central" fill="{_TEXT_COLOR}">'
            f"{label}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg_text: str, path: str) -> None:
    """Write an SVG string to a file."""
    if not svg_text.lstrip().startswith("<svg"):
        raise ValueError("the provided text does not look like an SVG document")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg_text)
