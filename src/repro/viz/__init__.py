"""Dependency-free visualisation of arrangements.

* :mod:`repro.viz.svg` — SVG top views of placements and bump-sector
  layouts (the style of Figures 2–5 of the paper),
* :mod:`repro.viz.ascii_art` — coarse ASCII top views for terminals and
  doctests.
"""

from repro.viz.ascii_art import ascii_placement
from repro.viz.svg import sector_layout_svg, placement_svg

__all__ = [
    "ascii_placement",
    "placement_svg",
    "sector_layout_svg",
]
