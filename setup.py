"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that fully offline environments (no access to a ``wheel`` distribution,
which modern ``pip install -e .`` needs for PEP 660 editable wheels) can
still perform a development install via ``python setup.py develop``.
"""

from setuptools import setup

setup()
