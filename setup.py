"""Package metadata.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so fully
offline environments — no access to a ``wheel`` distribution, which
modern ``pip install -e .`` needs for PEP 660 editable wheels — can still
perform a development install via ``python setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="hexamesh-repro",
    version="0.4.0",
    description=(
        "Reproduction of the HexaMesh (DAC 2023) chiplet-arrangement study: "
        "arrangement generators, D2D link model, cycle-accurate NoC simulator "
        "with three bit-identical engines, parallel sweeps, workloads and "
        "fault-injection resilience analysis"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy backs the spectral partitioner and the vectorized NoC engine's
    # flat tables (the CI examples job used to install it ad hoc).
    install_requires=["numpy"],
    extras_require={
        # `pip install .[bench]` for the pytest-based benchmark modules
        # under benchmarks/ (the `repro bench` harness itself needs no
        # extras — it only uses the stdlib + numpy).
        "bench": ["pytest-benchmark"],
        # pytest-cov backs the CI coverage job (line-coverage floor).
        "test": ["pytest", "pytest-benchmark", "hypothesis", "pytest-cov"],
    },
    entry_points={
        "console_scripts": ["hexamesh = repro.cli:main"],
    },
)
