"""Unit tests for repro.geometry.adjacency (shared-edge detection)."""

import pytest

from repro.geometry.adjacency import AdjacencyPolicy, shared_edge_length, shared_edges
from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect


class TestSharedEdgeLength:
    def test_full_vertical_contact(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(1.0)

    def test_full_horizontal_contact(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0, 1, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(1.0)

    def test_partial_contact_half_width(self):
        # The brickwall case: the upper chiplet is offset by half a width.
        a = Rect(0, 0, 1, 1)
        b = Rect(0.5, 1, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(0.5)

    def test_corner_contact_returns_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(0.0)

    def test_disjoint_rects_return_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(3, 3, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(0.0)

    def test_separated_by_gap_returns_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1.01, 0, 1, 1)
        assert shared_edge_length(a, b) == pytest.approx(0.0)

    def test_symmetry(self):
        a = Rect(0, 0, 2, 1)
        b = Rect(2, 0.5, 1, 2)
        assert shared_edge_length(a, b) == pytest.approx(shared_edge_length(b, a))


class TestSharedEdges:
    def _placement(self, rects):
        return ChipletPlacement(
            [PlacedChiplet(chiplet_id=i, rect=r) for i, r in enumerate(rects)]
        )

    def test_simple_row(self):
        placement = self._placement([Rect(0, 0, 1, 1), Rect(1, 0, 1, 1), Rect(2, 0, 1, 1)])
        edges = shared_edges(placement)
        assert [(a, b) for a, b, _ in edges] == [(0, 1), (1, 2)]

    def test_corner_only_contact_is_not_adjacent(self):
        placement = self._placement([Rect(0, 0, 1, 1), Rect(1, 1, 1, 1)])
        assert shared_edges(placement) == []

    def test_min_shared_edge_policy_filters_short_contacts(self):
        placement = self._placement([Rect(0, 0, 1, 1), Rect(0.9, 1, 1, 1)])
        # Contact length is 0.1.
        assert len(shared_edges(placement)) == 1
        policy = AdjacencyPolicy(min_shared_edge=0.2)
        assert shared_edges(placement, policy) == []

    def test_edges_are_sorted_and_ids_ordered(self):
        placement = ChipletPlacement(
            [
                PlacedChiplet(chiplet_id=5, rect=Rect(0, 0, 1, 1)),
                PlacedChiplet(chiplet_id=2, rect=Rect(1, 0, 1, 1)),
            ]
        )
        edges = shared_edges(placement)
        assert edges[0][:2] == (2, 5)

    def test_grid_placement_has_expected_edge_count(self, small_grid):
        edges = shared_edges(small_grid.placement)
        # A 3x3 grid has 12 internal shared edges.
        assert len(edges) == 12

    def test_brickwall_placement_matches_lattice_graph(self, small_brickwall):
        edges = {(a, b) for a, b, _ in shared_edges(small_brickwall.placement)}
        lattice = {tuple(sorted(edge)) for edge in small_brickwall.graph.edges()}
        assert edges == lattice

    def test_hexamesh_placement_matches_lattice_graph(self, medium_hexamesh):
        edges = {(a, b) for a, b, _ in shared_edges(medium_hexamesh.placement)}
        lattice = {tuple(sorted(edge)) for edge in medium_hexamesh.graph.edges()}
        assert edges == lattice

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdjacencyPolicy(min_shared_edge=-1.0)
