"""Unit tests of the batched multi-point machinery and its reset seams.

The cross-engine equivalence of the batched path is covered by the
``fast_sim_mode`` grids (``test_noc_engine.py``, ``test_noc_invariants.py``),
the golden traces and the hypothesis properties; this module pins the
component contracts underneath: network/endpoint/router/channel reset,
``NocSimulator.run_batch`` semantics and the :class:`BatchEngine`
lifecycle.
"""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.noc.channel import Channel
from repro.noc.config import SimulationConfig
from repro.noc.network import Network
from repro.noc.simulator import BatchPoint, NocSimulator
from repro.noc.vec_engine import BatchEngine
from repro.resilience import sample_survivable_faults

FAST_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300
)


class TestBatchPoint:
    def test_rate_is_validated(self):
        with pytest.raises(ValueError):
            BatchPoint(1.5)
        with pytest.raises(ValueError):
            BatchPoint(-0.1)

    def test_seed_defaults_to_none(self):
        point = BatchPoint(0.1)
        assert point.seed is None


class TestNetworkReset:
    def _run(self, network, config):
        from repro.noc.engine import run_legacy_loop

        return run_legacy_loop(network, config)

    def test_reset_network_matches_fresh_network(self):
        """A reset network is bit-identical to a freshly built one."""
        graph = make_arrangement("hexamesh", 7).graph
        reused = Network(graph, FAST_CONFIG, injection_rate=0.3)
        self._run(reused, FAST_CONFIG)  # dirty it thoroughly
        reused.reset(seed=11, injection_rate=0.2)
        self._run(reused, FAST_CONFIG)

        fresh_config = SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=11
        )
        fresh = Network(graph, fresh_config, injection_rate=0.2)
        self._run(fresh, fresh_config)

        assert [e.ejected_flits for e in reused.endpoints] == [
            e.ejected_flits for e in fresh.endpoints
        ]
        assert [e.created_packets for e in reused.endpoints] == [
            e.created_packets for e in fresh.endpoints
        ]
        assert [r.buffered_flits for r in reused.routers] == [
            r.buffered_flits for r in fresh.routers
        ]
        assert [r.forwarded_flits for r in reused.routers] == [
            r.forwarded_flits for r in fresh.routers
        ]
        reused_latencies = sorted(
            p.latency for e in reused.endpoints for p in e.ejected_packets if p.measured
        )
        fresh_latencies = sorted(
            p.latency for e in fresh.endpoints for p in e.ejected_packets if p.measured
        )
        assert reused_latencies == fresh_latencies
        reused.verify_flit_conservation()

    def test_reset_updates_seed_in_config(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        network.reset(seed=42)
        assert network.config.seed == 42

    def test_reset_clears_channels_and_counters(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.5)
        self._run(network, FAST_CONFIG)
        network.reset()
        assert all(not c.in_flight for c, _ in network.channel_sinks())
        assert network.total_created_flits() == 0
        assert network.total_ejected_flits() == 0
        assert all(e.source_queue_length == 0 for e in network.endpoints)

    def test_prebuilt_routing_is_shared_and_validated(self):
        from repro.noc.routing import RoutingTables

        graph = make_arrangement("grid", 9).graph
        routing = RoutingTables(graph)
        network = Network(graph, FAST_CONFIG, injection_rate=0.1, routing=routing)
        assert network.routing is routing
        other = make_arrangement("grid", 4).graph
        with pytest.raises(ValueError, match="routing tables cover"):
            Network(other, FAST_CONFIG, injection_rate=0.1, routing=routing)


class TestChannelSeams:
    def test_clear_drops_in_flight(self):
        channel = Channel(3)
        channel.send("x", 0)
        channel.clear()
        assert channel.in_flight == 0

    def test_load_restores_fifo_order(self):
        channel = Channel(3)
        channel.load([(5, "a"), (6, "b")])
        assert channel.pending() == ((5, "a"), (6, "b"))
        assert channel.receive(5) == ["a"]
        assert channel.receive(6) == ["b"]


class TestRunBatch:
    def test_empty_points_return_empty(self):
        graph = make_arrangement("grid", 4).graph
        assert NocSimulator.run_batch(graph, [], config=FAST_CONFIG) == []

    def test_single_point_matches_simulator(self):
        graph = make_arrangement("grid", 9).graph
        expected = NocSimulator(graph, FAST_CONFIG, injection_rate=0.2).run(
            engine="legacy"
        )
        (result,) = NocSimulator.run_batch(
            graph, [BatchPoint(0.2)], config=FAST_CONFIG
        )
        assert result == expected

    @pytest.mark.parametrize("engine", ["active", "legacy"])
    def test_fallback_engines_share_routing_and_match(self, engine):
        graph = make_arrangement("grid", 9).graph
        rates = (0.1, 0.4)
        expected = [
            NocSimulator(graph, FAST_CONFIG, injection_rate=rate).run(engine=engine)
            for rate in rates
        ]
        batched = NocSimulator.run_batch(
            graph, [BatchPoint(rate) for rate in rates],
            config=FAST_CONFIG, engine=engine,
        )
        assert batched == expected

    def test_invalid_engine_rejected(self):
        graph = make_arrangement("grid", 4).graph
        with pytest.raises(ValueError):
            NocSimulator.run_batch(
                graph, [BatchPoint(0.1)], config=FAST_CONFIG, engine="warp-speed"
            )

    def test_faults_applied_once_and_shared(self):
        graph = make_arrangement("hexamesh", 7).graph
        faults = sample_survivable_faults(graph, num_router_faults=1, seed=5)
        seen = []

        def capture(index, network, result):
            seen.append(network)

        results = NocSimulator.run_batch(
            graph,
            [BatchPoint(0.1), BatchPoint(0.3)],
            config=FAST_CONFIG,
            faults=faults,
            on_point=capture,
        )
        # All points ran on the same degraded network instance.
        assert seen[0] is seen[1]
        assert all(result.num_routers == 6 for result in results)
        expected = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.3, faults=faults
        ).run(engine="legacy")
        assert results[1] == expected

    def test_on_point_receives_points_in_order(self):
        graph = make_arrangement("grid", 4).graph
        order = []

        def capture(index, network, result):
            order.append((index, result.injection_rate))

        NocSimulator.run_batch(
            graph,
            [BatchPoint(0.05), BatchPoint(0.2), BatchPoint(0.1)],
            config=FAST_CONFIG,
            on_point=capture,
        )
        assert order == [(0, 0.05), (1, 0.2), (2, 0.1)]

    def test_network_is_usable_after_batch(self):
        """After run_batch the network is fully handed back (channels, state)."""
        graph = make_arrangement("grid", 9).graph
        captured = {}

        def capture(index, network, result):
            captured["network"] = network

        NocSimulator.run_batch(
            graph, [BatchPoint(0.3)], config=FAST_CONFIG, on_point=capture
        )
        network = captured["network"]
        # Endpoint injection channels were restored to the real Channel
        # objects (the batch emitters are detached on close).
        assert all(
            isinstance(endpoint.out_channel, Channel)
            for endpoint in network.endpoints
        )
        network.verify_flit_conservation()
        # The object model is steppable past the run.
        total = (
            FAST_CONFIG.warmup_cycles
            + FAST_CONFIG.measurement_cycles
            + FAST_CONFIG.drain_cycles
        )
        for cycle in range(total, total + 30):
            network.deliver_channels(cycle)
            network.step_routers(cycle)
        network.verify_flit_conservation()


class TestBatchEngineLifecycle:
    def test_closed_engine_rejects_further_points(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        engine = BatchEngine(network, FAST_CONFIG)
        engine.run_point(seed=1, injection_rate=0.1)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run_point(seed=1, injection_rate=0.1)

    def test_close_is_idempotent_and_restores_channels(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        originals = [endpoint.out_channel for endpoint in network.endpoints]
        engine = BatchEngine(network, FAST_CONFIG)
        assert [e.out_channel for e in network.endpoints] != originals
        engine.close()
        engine.close()
        assert [e.out_channel for e in network.endpoints] == originals
