"""Unit tests for repro.geometry.placement."""

import pytest

from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect


def _chiplet(chiplet_id, x, y, w=1.0, h=1.0, role="compute"):
    return PlacedChiplet(chiplet_id=chiplet_id, rect=Rect(x, y, w, h), role=role)


class TestPlacedChiplet:
    def test_center_and_area(self):
        chiplet = _chiplet(0, 1, 1, 2, 4)
        assert chiplet.center.x == pytest.approx(2.0)
        assert chiplet.center.y == pytest.approx(3.0)
        assert chiplet.area == pytest.approx(8.0)

    def test_lattice_position_defaults_to_none(self):
        assert _chiplet(0, 0, 0).lattice_position is None


class TestChipletPlacement:
    def test_add_and_lookup(self):
        placement = ChipletPlacement()
        placement.add(_chiplet(0, 0, 0))
        placement.add(_chiplet(1, 1, 0))
        assert len(placement) == 2
        assert placement[1].rect.x == pytest.approx(1.0)

    def test_lookup_missing_id_raises(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0)])
        with pytest.raises(KeyError):
            placement[7]

    def test_duplicate_ids_rejected_on_add(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0)])
        with pytest.raises(ValueError, match="duplicate"):
            placement.add(_chiplet(0, 5, 5))

    def test_duplicate_ids_rejected_on_construction(self):
        with pytest.raises(ValueError, match="unique"):
            ChipletPlacement([_chiplet(0, 0, 0), _chiplet(0, 2, 2)])

    def test_overlapping_chiplets_rejected(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0)])
        with pytest.raises(ValueError, match="overlaps"):
            placement.add(_chiplet(1, 0.5, 0.5))

    def test_touching_chiplets_allowed(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0)])
        placement.add(_chiplet(1, 1.0, 0.0))
        assert len(placement) == 2

    def test_from_rects_assigns_sequential_ids(self):
        placement = ChipletPlacement.from_rects([Rect(0, 0, 1, 1), Rect(2, 0, 1, 1)])
        assert placement.chiplet_ids == [0, 1]

    def test_bounding_box(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0), _chiplet(1, 2, 3)])
        bounds = placement.bounding_box()
        assert (bounds.x, bounds.y) == (0, 0)
        assert bounds.x_max == pytest.approx(3.0)
        assert bounds.y_max == pytest.approx(4.0)

    def test_bounding_box_of_empty_placement_raises(self):
        with pytest.raises(ValueError):
            ChipletPlacement().bounding_box()

    def test_total_area_and_utilization(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0), _chiplet(1, 1, 0)])
        assert placement.total_chiplet_area() == pytest.approx(2.0)
        assert placement.utilization() == pytest.approx(1.0)

    def test_utilization_with_gaps(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0), _chiplet(1, 3, 0)])
        assert placement.utilization() == pytest.approx(0.5)

    def test_has_overlaps_false_for_valid_placement(self):
        placement = ChipletPlacement([_chiplet(0, 0, 0), _chiplet(1, 1, 0)])
        assert not placement.has_overlaps()

    def test_compute_chiplets_filters_roles(self):
        placement = ChipletPlacement(
            [_chiplet(0, 0, 0), _chiplet(1, 1, 0, role="io")]
        )
        assert [c.chiplet_id for c in placement.compute_chiplets()] == [0]

    def test_translated_and_normalized(self):
        placement = ChipletPlacement([_chiplet(0, 5, 5), _chiplet(1, 6, 5)])
        normalized = placement.normalized()
        bounds = normalized.bounding_box()
        assert bounds.x == pytest.approx(0.0)
        assert bounds.y == pytest.approx(0.0)
        # The original placement is unchanged.
        assert placement[0].rect.x == pytest.approx(5.0)

    def test_iteration_preserves_order(self):
        placement = ChipletPlacement([_chiplet(2, 0, 0), _chiplet(5, 1, 0)])
        assert [c.chiplet_id for c in placement] == [2, 5]
