"""The service transport: JSONL over a Unix socket, and the jobs CLI.

An in-process :class:`ServiceServer` (daemon thread) fronts a real
:class:`JobManager`; a :class:`ServiceClient` — and ``hexamesh jobs``
through ``main(argv)`` — exercise every protocol op end to end,
including the warm-resubmission byte-identity the CI service smoke
asserts from the outside.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import (
    PROTOCOL,
    JobManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
)

SWEEP_SPEC = {
    "type": "sweep",
    "kinds": ["grid"],
    "chiplets": [7],
    "rates": [0.05, 0.3],
    "cycles": 80,
}


@pytest.fixture
def service(tmp_path):
    socket_path = str(tmp_path / "hexamesh.sock")
    manager = JobManager(cache_dir=str(tmp_path / "store"), workers=2)
    server = ServiceServer(manager, socket_path)
    server.start()
    client = ServiceClient(socket_path, connect_timeout=10.0)
    yield client, server
    server.shutdown()


class TestProtocol:
    def test_ping_reports_protocol_and_store(self, service, tmp_path):
        client, _ = service
        response = client.call({"op": "ping"})
        assert response["protocol"] == PROTOCOL
        assert response["cache_dir"] == str(tmp_path / "store")

    def test_submit_watch_streams_progress_then_result(self, service):
        client, _ = service
        lines = list(
            client.request({"op": "submit", "spec": SWEEP_SPEC, "watch": True})
        )
        ack, middle, final = lines[0], lines[1:-1], lines[-1]
        assert ack["ok"] and ack["job"]["id"]
        job_id = ack["job"]["id"]
        done = [line["progress"]["done"] for line in middle]
        assert done == sorted(done)
        assert middle[-1]["progress"]["finished"] is True
        assert final["ok"] and final["job"]["state"] == "done"
        assert final["job"]["id"] == job_id
        assert final["result"]["csv"].startswith("kind,chiplets,rate,")

    def test_status_result_and_jobs_roundtrip(self, service):
        client, _ = service
        job_id = client.call({"op": "submit", "spec": SWEEP_SPEC})["job"]["id"]
        result = client.call({"op": "result", "id": job_id, "timeout": 120})
        assert result["job"]["state"] == "done"
        assert result["result"]["cache"]["candidates"] == 2
        status = client.call({"op": "status", "id": job_id})
        assert status["job"]["state"] == "done"
        listing = client.call({"op": "jobs"})
        assert [job["id"] for job in listing["jobs"]] == [job_id]

    def test_warm_resubmission_over_the_socket(self, service):
        client, _ = service
        first = client.call({"op": "submit", "spec": SWEEP_SPEC})["job"]["id"]
        cold = client.call({"op": "result", "id": first, "timeout": 120})["result"]
        second = client.call({"op": "submit", "spec": SWEEP_SPEC})["job"]["id"]
        warm = client.call({"op": "result", "id": second, "timeout": 120})["result"]
        assert warm["cache"]["simulated"] == 0
        assert warm["cache"]["cache_hits"] == 2
        assert warm["csv"] == cold["csv"]

    def test_resume_resubmits_a_finished_job(self, service):
        client, _ = service
        job_id = client.call({"op": "submit", "spec": SWEEP_SPEC})["job"]["id"]
        client.call({"op": "result", "id": job_id, "timeout": 120})
        lines = list(client.request({"op": "resume", "id": job_id, "watch": True}))
        assert lines[0]["ok"]
        assert lines[0]["job"]["resumed_from"] == job_id
        assert lines[-1]["job"]["state"] == "done"
        assert lines[-1]["result"]["cache"]["simulated"] == 0

    def test_bad_requests_are_rejected_not_fatal(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="unknown op"):
            client.call({"op": "frobnicate"})
        with pytest.raises(ServiceError, match="needs a job 'id'"):
            client.call({"op": "status"})
        with pytest.raises(ServiceError, match="unknown job id"):
            client.call({"op": "status", "id": "job-999"})
        with pytest.raises(ServiceError, match="invalid spec"):
            client.call({"op": "submit", "spec": {"type": "sweep", "kinds": ["x"]}})
        with pytest.raises(ServiceError, match="needs a 'spec'"):
            client.call({"op": "submit"})
        # ...and the server is still alive afterwards.
        assert client.call({"op": "ping"})["ok"]

    def test_shutdown_op_stops_the_server(self, tmp_path):
        socket_path = str(tmp_path / "hexamesh.sock")
        manager = JobManager(cache_dir=None, workers=1)
        server = ServiceServer(manager, socket_path)
        server.start()
        client = ServiceClient(socket_path)
        assert client.call({"op": "shutdown"})["shutdown"] is True
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
        with pytest.raises((FileNotFoundError, ConnectionRefusedError)):
            ServiceClient(socket_path, connect_timeout=0.2).call({"op": "ping"})


class TestJobsCli:
    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SWEEP_SPEC))
        return str(path)

    def test_submit_watch_and_warm_resubmit(self, service, tmp_path, capsys):
        client, _ = service
        socket_path = client.socket_path
        spec_file = self._spec_file(tmp_path)
        cold_csv = tmp_path / "cold.csv"
        argv = [
            "jobs", "submit", "--socket", socket_path,
            "--spec-file", spec_file, "--output", str(cold_csv),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "job job-1: done" in captured.err
        assert "/ 2 simulated" in captured.err

        warm_csv = tmp_path / "warm.csv"
        argv = [
            "jobs", "submit", "--socket", socket_path,
            "--spec-file", spec_file, "--output", str(warm_csv),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "/ 0 simulated" in captured.err
        assert "(100% hit ratio)" in captured.err
        assert warm_csv.read_bytes() == cold_csv.read_bytes()

    def test_inline_spec_status_result_and_list(self, service, tmp_path, capsys):
        client, _ = service
        socket_path = client.socket_path
        argv = [
            "jobs", "submit", "--socket", socket_path,
            "--spec", json.dumps(SWEEP_SPEC),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        out_csv = tmp_path / "result.csv"
        assert main([
            "jobs", "result", "--socket", socket_path, "job-1",
            "--timeout", "120", "--output", str(out_csv),
        ]) == 0
        capsys.readouterr()
        assert out_csv.read_text().startswith("kind,chiplets,rate,")
        assert main(["jobs", "status", "--socket", socket_path, "job-1"]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["jobs", "list", "--socket", socket_path]) == 0
        assert "job-1" in capsys.readouterr().out
        assert main(["jobs", "ping", "--socket", socket_path]) == 0
        assert PROTOCOL in capsys.readouterr().out

    def test_unreachable_socket_is_a_clean_error(self, tmp_path, capsys, monkeypatch):
        # Shrink the client's connect-retry window; the CLI default (10s)
        # exists only to let clients race `hexamesh serve` startup.
        import repro.service as service_module

        real = service_module.ServiceClient
        monkeypatch.setattr(
            service_module,
            "ServiceClient",
            lambda path: real(path, connect_timeout=0.2),
        )
        assert main([
            "jobs", "ping", "--socket", str(tmp_path / "missing.sock"),
        ]) == 1
        assert "hexamesh serve" in capsys.readouterr().err
