"""Unit tests for repro.graphs.metrics."""

import pytest

from repro.graphs.metrics import (
    DegreeStatistics,
    all_pairs_distances,
    average_distance,
    bfs_distances,
    compute_metrics,
    degree_statistics,
    diameter,
    eccentricities,
    hop_histogram,
    is_connected,
    path_length_percentile,
    planar_average_degree_bound,
    radius,
)
from repro.graphs.model import ChipGraph


class TestBfsDistances:
    def test_path_graph(self, path_graph):
        distances = bfs_distances(path_graph, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unknown_source_raises(self, path_graph):
        with pytest.raises(KeyError):
            bfs_distances(path_graph, 99)

    def test_disconnected_component_not_reached(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert 2 not in bfs_distances(graph, 0)

    def test_all_pairs(self, cycle_graph):
        distances = all_pairs_distances(cycle_graph)
        assert distances[0][3] == 3
        assert distances[2][5] == 3
        assert len(distances) == 6


class TestConnectivity:
    def test_connected_graph(self, cycle_graph):
        assert is_connected(cycle_graph)

    def test_disconnected_graph(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert not is_connected(graph)

    def test_single_node_is_connected(self):
        assert is_connected(ChipGraph(nodes=[0]))


class TestDiameterAndRadius:
    def test_path_graph(self, path_graph):
        assert diameter(path_graph) == 3
        assert radius(path_graph) == 2

    def test_cycle_graph(self, cycle_graph):
        assert diameter(cycle_graph) == 3
        assert radius(cycle_graph) == 3

    def test_single_node(self):
        graph = ChipGraph(nodes=[0])
        assert diameter(graph) == 0
        assert radius(graph) == 0

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            diameter(ChipGraph())

    def test_disconnected_graph_raises(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            diameter(graph)

    def test_eccentricities(self, path_graph):
        assert eccentricities(path_graph) == {0: 3, 1: 2, 2: 2, 3: 3}


class TestAverageDistance:
    def test_path_graph(self, path_graph):
        # Pairwise distances of a 4-path: 1,2,3,1,2,1 (unordered) -> mean 10/6.
        assert average_distance(path_graph) == pytest.approx(10 / 6)

    def test_single_node(self):
        assert average_distance(ChipGraph(nodes=[0])) == 0.0

    def test_complete_graph(self):
        graph = ChipGraph(edges=[(0, 1), (0, 2), (1, 2)])
        assert average_distance(graph) == pytest.approx(1.0)


class TestDegreeStatistics:
    def test_star_graph(self):
        graph = ChipGraph(edges=[(0, i) for i in range(1, 5)])
        stats = DegreeStatistics.of(graph)
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert stats.average == pytest.approx(8 / 5)

    def test_helper_function(self, cycle_graph):
        stats = degree_statistics(cycle_graph)
        assert stats.minimum == stats.maximum == 2

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            degree_statistics(ChipGraph())


class TestPlanarBound:
    def test_bound_value(self):
        assert planar_average_degree_bound(12) == pytest.approx(5.0)

    def test_bound_approaches_six(self):
        assert planar_average_degree_bound(10**6) == pytest.approx(6.0, abs=1e-4)

    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            planar_average_degree_bound(2)

    def test_arrangement_degrees_respect_bound(self, medium_hexamesh):
        stats = degree_statistics(medium_hexamesh.graph)
        assert stats.average <= planar_average_degree_bound(medium_hexamesh.num_chiplets)


class TestComputeMetrics:
    def test_bundle_matches_individual_metrics(self, small_brickwall):
        graph = small_brickwall.graph
        metrics = compute_metrics(graph)
        assert metrics.diameter == diameter(graph)
        assert metrics.radius == radius(graph)
        assert metrics.average_distance == pytest.approx(average_distance(graph))
        assert metrics.num_edges == graph.num_edges
        assert metrics.average_degree == pytest.approx(degree_statistics(graph).average)

    def test_single_node_metrics(self):
        metrics = compute_metrics(ChipGraph(nodes=[0]))
        assert metrics.diameter == 0
        assert metrics.average_distance == 0.0

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            compute_metrics(ChipGraph())


class TestHopHistogram:
    def test_path_graph_histogram(self, path_graph):
        assert hop_histogram(path_graph) == {1: 3, 2: 2, 3: 1}

    def test_percentiles(self, path_graph):
        assert path_length_percentile(path_graph, 0) <= 1
        assert path_length_percentile(path_graph, 100) == 3
        assert path_length_percentile(path_graph, 50) in (1, 2)

    def test_percentile_validation(self, path_graph):
        with pytest.raises(ValueError):
            path_length_percentile(path_graph, 150)
