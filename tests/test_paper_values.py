"""Pin the concrete numbers quoted in the paper.

Every value in this module appears verbatim in the paper's text, figures or
annotations; the tests check that the library reproduces them from first
principles (generated arrangements, solved shapes, the link model).
"""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.analytical import (
    asymptotic_bisection_improvement_percent,
    asymptotic_diameter_reduction_percent,
)
from repro.graphs.metrics import degree_statistics, diameter
from repro.linkmodel.bandwidth import D2DLinkModel
from repro.linkmodel.parameters import EvaluationParameters
from repro.linkmodel.shape import solve_hex_shape
from repro.partition.estimator import estimate_bisection_bandwidth


class TestSectionIVWorkedExample:
    """Section IV-B: A_C = 16 mm², p_p = 0.4."""

    def test_chiplet_width(self):
        assert solve_hex_shape(16.0, 0.4).width_mm == pytest.approx(4.38, abs=0.005)

    def test_chiplet_height(self):
        assert solve_hex_shape(16.0, 0.4).height_mm == pytest.approx(3.65, abs=0.005)

    def test_bump_distance(self):
        assert solve_hex_shape(16.0, 0.4).bump_distance_mm == pytest.approx(0.73, abs=0.005)


class TestFigure4Annotations:
    """Neighbour counts and formulas annotated in Figure 4."""

    def test_grid_neighbors(self):
        stats = degree_statistics(make_arrangement("grid", 49, "regular").graph)
        assert (stats.minimum, stats.maximum) == (2, 4)

    def test_brickwall_neighbors(self):
        stats = degree_statistics(make_arrangement("brickwall", 49, "regular").graph)
        assert (stats.minimum, stats.maximum) == (2, 6)

    def test_honeycomb_neighbors(self):
        stats = degree_statistics(make_arrangement("honeycomb", 49, "regular").graph)
        assert (stats.minimum, stats.maximum) == (2, 6)

    def test_hexamesh_neighbors(self):
        stats = degree_statistics(make_arrangement("hexamesh", 61, "regular").graph)
        assert (stats.minimum, stats.maximum) == (3, 6)

    @pytest.mark.parametrize(
        "count, expected_grid, expected_brickwall",
        [(49, 12, 9), (100, 18, 14)],
    )
    def test_diameters(self, count, expected_grid, expected_brickwall):
        assert diameter(make_arrangement("grid", count, "regular").graph) == expected_grid
        assert (
            diameter(make_arrangement("brickwall", count, "regular").graph)
            == expected_brickwall
        )

    def test_hexamesh_diameter_91(self):
        # 1/3 * sqrt(12*91 - 3) - 1 = 10.
        assert diameter(make_arrangement("hexamesh", 91, "regular").graph) == 10


class TestSectionIVDAsymptotics:
    """Section IV-D / abstract: -25 % / -42 % diameter, +100 % / +130 % bisection."""

    def test_brickwall_asymptotics(self):
        assert asymptotic_diameter_reduction_percent("brickwall") == pytest.approx(25.0)
        assert asymptotic_bisection_improvement_percent("brickwall") == pytest.approx(100.0)

    def test_hexamesh_asymptotics(self):
        assert asymptotic_diameter_reduction_percent("hexamesh") == pytest.approx(42.0, abs=0.5)
        assert asymptotic_bisection_improvement_percent("hexamesh") == pytest.approx(
            130.0, abs=1.0
        )


class TestFigure6Annotations:
    """The x0.6 / x2.3 factors annotated at N = 100 in Figure 6."""

    def test_diameter_ratio_at_100_chiplets(self):
        grid = diameter(make_arrangement("grid", 100, "regular").graph)
        hexamesh = diameter(make_arrangement("hexamesh", 100).graph)
        assert hexamesh / grid == pytest.approx(0.6, abs=0.07)

    def test_bisection_ratio_at_100_chiplets(self):
        grid = estimate_bisection_bandwidth(make_arrangement("grid", 100, "regular").graph)
        hexamesh = estimate_bisection_bandwidth(make_arrangement("hexamesh", 100).graph)
        assert hexamesh / grid == pytest.approx(2.3, abs=0.35)


class TestSectionVIParameters:
    """Section VI-B: the concrete link-model numbers of the evaluation."""

    def test_default_parameters_match_paper(self):
        params = EvaluationParameters()
        assert params.total_chiplet_area_mm2 == 800.0
        assert params.power_bump_fraction == 0.4
        assert params.link.bump_pitch_mm == 0.15
        assert params.link.non_data_wires == 12
        assert params.link.frequency_hz == 16e9
        assert params.link_latency_cycles == 27
        assert params.router_latency_cycles == 3

    def test_grid_link_bandwidth_at_n100(self):
        estimate = D2DLinkModel().estimate("grid", 100)
        assert estimate.num_wires == 53
        assert estimate.num_data_wires == 41
        assert estimate.bandwidth_gbps == pytest.approx(656.0)

    def test_chiplet_area_stays_below_reticle_limit(self):
        params = EvaluationParameters()
        # 800 mm² is "slightly below the lithographic reticle limit" (~858 mm²).
        assert params.total_chiplet_area_mm2 < 858.0
