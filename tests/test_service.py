"""The exploration service core: specs, in-flight dedup, job lifecycle.

The three acceptance properties of exploration-as-a-service live here:
a warm resubmission returns the full result with *zero* simulator
invocations, two concurrent jobs sharing candidates trigger exactly one
simulation per unique ``result_key``, and an interrupted job resumes as
pure store hits up to the cut.  Progress streams are additionally pinned
monotone in ``done`` and terminated by a ``finished`` snapshot.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.core.parallel as parallel_module
from repro.core.parallel import InFlightRegistry, ParallelSweepRunner
from repro.service import JobManager, job_spec
from repro.service.specs import phase_config
from repro.service.tables import render_csv, sweep_rows

#: cycles=80 scales to the FAST_CONFIG-sized phases the other suites use.
SWEEP_SPEC = {
    "type": "sweep",
    "kinds": ["grid", "hexamesh"],
    "chiplets": [7],
    "rates": [0.05, 0.3],
    "cycles": 80,
}


def _forbid_simulation(monkeypatch):
    """Make any simulator invocation fail the test loudly."""

    def boom(*_args, **_kwargs):  # pragma: no cover - the assertion itself
        raise AssertionError("a warm run must not invoke the simulator")

    monkeypatch.setattr(parallel_module, "_evaluate_work_item", boom)
    monkeypatch.setattr(parallel_module, "_evaluate_batch_item", boom)


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(cache_dir=str(tmp_path / "store"), workers=2)
    yield mgr
    mgr.shutdown(wait=False, cancel_pending=True)


class TestJobSpec:
    def test_defaults_and_normalisation(self):
        spec = job_spec({"type": "sweep", "chiplets": 7, "rates": 0.05})
        assert spec.param("chiplets") == (7,)
        assert spec.param("rates") == (0.05,)
        assert spec.param("kinds") == ("grid", "hexamesh")
        assert spec.param("cycles") == 1000
        assert spec.param("jobs") == 1

    def test_equal_explorations_share_an_identity(self):
        first = job_spec({"type": "sweep", "chiplets": [7], "rates": [0.05]})
        second = job_spec({"chiplets": 7, "type": "sweep", "rates": 0.05})
        assert first == second
        assert first.canonical_json() == second.canonical_json()

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec field.*chiplet"):
            job_spec({"type": "sweep", "chiplet": [7]})

    def test_unknown_type_and_missing_type_are_rejected(self):
        with pytest.raises(ValueError, match="needs a 'type'"):
            job_spec({"kinds": ["grid"]})
        with pytest.raises(ValueError, match="type"):
            job_spec({"type": "figure8"})

    def test_cross_field_validation(self):
        with pytest.raises(ValueError, match="engine"):
            job_spec({"type": "sweep", "engine": "imaginary"})
        with pytest.raises(ValueError, match="kind"):
            job_spec({"type": "sweep", "kinds": ["moebius"]})

    def test_figure7_spec_has_no_phase_knobs(self):
        # Figure 7 always runs the paper's parameters, so service results
        # stay byte-identical to `hexamesh figure 7`.
        spec = job_spec({"type": "figure7", "max_chiplets": 5})
        with pytest.raises(KeyError):
            spec.param("cycles")
        with pytest.raises(ValueError, match="unknown figure7 spec field"):
            job_spec({"type": "figure7", "cycles": 100})

    def test_config_matches_the_cli_phase_scaling(self):
        spec = job_spec({"type": "sweep", "cycles": 80, "seed": 3})
        assert spec.config() == phase_config(80, seed=3)


class TestInFlightRegistry:
    def test_first_claim_owns_followers_wait(self):
        registry = InFlightRegistry()
        assert registry.claim("k") is None
        entry = registry.claim("k")
        assert entry is not None
        assert registry.in_flight() == 1
        registry.publish("k", "record")
        assert entry.event.is_set()
        assert entry.record == "record"
        assert registry.in_flight() == 0
        # A fresh claim after publish starts a new flight.
        assert registry.claim("k") is None

    def test_release_wakes_followers_empty_handed(self):
        registry = InFlightRegistry()
        registry.claim("k")
        entry = registry.claim("k")
        registry.release({"k"})
        assert entry.event.is_set()
        assert entry.record is None

    def test_publish_without_claim_is_ignored(self):
        registry = InFlightRegistry()
        registry.publish("unclaimed", "record")
        assert registry.in_flight() == 0


class TestJobLifecycle:
    def test_sweep_job_matches_the_direct_runner(self, manager):
        job = manager.submit(SWEEP_SPEC)
        result = manager.result(job.id, timeout=120)
        spec = job.spec
        runner = ParallelSweepRunner(spec.config(), jobs=1)
        records = runner.run(
            ParallelSweepRunner.grid(
                spec.param("kinds"), spec.param("chiplets"), spec.param("rates"),
                spec.param("traffic"),
            )
        )
        rows = sweep_rows(records)
        assert result["rows"] == rows
        assert result["csv"] == render_csv(result["header"], rows)
        assert result["cache"] == {"candidates": 4, "cache_hits": 0, "simulated": 4}
        assert result["pareto"]
        assert result["pareto"] == sorted(
            result["pareto"], key=lambda point: point["latency"]
        )
        status = manager.status(job.id)
        assert status["state"] == "done"
        assert status["progress"]["finished"] is True

    def test_warm_resubmission_simulates_nothing(self, manager, monkeypatch):
        cold = manager.result(manager.submit(SWEEP_SPEC).id, timeout=120)
        _forbid_simulation(monkeypatch)
        warm = manager.result(manager.submit(SWEEP_SPEC).id, timeout=120)
        assert warm["cache"] == {"candidates": 4, "cache_hits": 4, "simulated": 0}
        assert warm["csv"] == cold["csv"]
        assert warm["pareto"] == cold["pareto"]

    def test_failed_job_surfaces_the_error(self, monkeypatch):
        manager = JobManager(cache_dir=None, workers=1)
        try:
            def boom(*_args, **_kwargs):
                raise RuntimeError("simulated explosion")

            monkeypatch.setattr(parallel_module, "_evaluate_work_item", boom)
            job = manager.submit(SWEEP_SPEC)
            with pytest.raises(RuntimeError, match="simulated explosion"):
                manager.result(job.id, timeout=60)
            assert manager.status(job.id)["state"] == "failed"
        finally:
            manager.shutdown(wait=False, cancel_pending=True)

    def test_unknown_job_id_raises(self, manager):
        with pytest.raises(KeyError, match="unknown job id"):
            manager.status("job-999")

    def test_queued_job_cancels_before_start(self, manager, monkeypatch):
        gate = threading.Semaphore(0)
        real = parallel_module._evaluate_work_item

        def gated(item):
            gate.acquire()
            return real(item)

        monkeypatch.setattr(parallel_module, "_evaluate_work_item", gated)
        # Fill both worker threads so the third submission stays queued.
        blockers = [manager.submit(SWEEP_SPEC) for _ in range(2)]
        queued = manager.submit(SWEEP_SPEC)
        status = manager.cancel(queued.id)
        assert status["state"] == "cancelled"
        for _ in range(32):
            gate.release()
        for job in blockers:
            assert job.wait(timeout=120)


class TestStreamedProgress:
    def test_stream_is_monotone_and_ends_finished(self, manager):
        job = manager.submit(SWEEP_SPEC)
        snapshots = list(manager.stream(job.id))
        assert snapshots, "a 4-candidate sweep must stream snapshots"
        done = [snapshot["done"] for snapshot in snapshots]
        assert done == sorted(done)
        assert snapshots[-1]["finished"] is True
        assert snapshots[-1]["done"] == snapshots[-1]["total"] == 4
        # A late subscriber replays the full history.
        replay = list(manager.stream(job.id))
        assert replay == snapshots


class TestCrossJobDeduplication:
    def test_concurrent_identical_jobs_simulate_each_key_once(
        self, manager, monkeypatch
    ):
        lock = threading.Lock()
        simulated: set[tuple] = set()
        real = parallel_module._evaluate_work_item

        def once_per_key(item):
            _, candidate, _, _ = item
            key = (candidate.kind, candidate.num_chiplets, candidate.injection_rate)
            with lock:
                if key in simulated:
                    raise AssertionError(f"candidate {key} simulated twice")
                simulated.add(key)
            # Stretch the simulation window so the two jobs genuinely
            # overlap on the in-flight registry rather than racing past
            # each other into the store.
            time.sleep(0.2)
            return real(item)

        monkeypatch.setattr(parallel_module, "_evaluate_work_item", once_per_key)
        first = manager.submit(SWEEP_SPEC)
        second = manager.submit(SWEEP_SPEC)
        result_a = manager.result(first.id, timeout=120)
        result_b = manager.result(second.id, timeout=120)
        assert result_a["csv"] == result_b["csv"]
        assert len(simulated) == 4
        total = result_a["cache"]["simulated"] + result_b["cache"]["simulated"]
        assert total == 4
        assert manager.in_flight.in_flight() == 0


class TestCancelAndResume:
    def test_interrupted_job_resumes_as_store_hits(self, manager, monkeypatch):
        gate = threading.Semaphore(0)
        real = parallel_module._evaluate_work_item

        def gated(item):
            gate.acquire()
            return real(item)

        monkeypatch.setattr(parallel_module, "_evaluate_work_item", gated)
        job = manager.submit(SWEEP_SPEC)
        gate.release(2)
        deadline = time.monotonic() + 60
        while manager.status(job.id)["snapshots"] < 2:
            assert time.monotonic() < deadline, "first two candidates never landed"
            time.sleep(0.01)
        manager.cancel(job.id)
        gate.release(8)  # let any in-flight simulation finish and unwind
        assert job.wait(timeout=120)
        assert manager.status(job.id)["state"] == "cancelled"
        with pytest.raises(RuntimeError, match="cancelled"):
            manager.result(job.id)

        resumed = manager.resume(job.id)
        assert resumed.resumed_from == job.id
        result = manager.result(resumed.id, timeout=120)
        # Everything simulated before the cut comes back from the store.
        assert result["cache"]["candidates"] == 4
        assert result["cache"]["cache_hits"] >= 2
        assert result["cache"]["simulated"] <= 2

        # And once the resumed job completed the grid, a third run is
        # 100% store hits: zero simulator invocations.
        _forbid_simulation(monkeypatch)
        third = manager.result(manager.submit(SWEEP_SPEC).id, timeout=120)
        assert third["cache"]["cache_hits"] == 4
        assert third["cache"]["simulated"] == 0
        assert third["csv"] == result["csv"]

    def test_resume_requires_a_terminal_job(self, manager, monkeypatch):
        gate = threading.Semaphore(0)
        real = parallel_module._evaluate_work_item

        def gated(item):
            gate.acquire()
            return real(item)

        monkeypatch.setattr(parallel_module, "_evaluate_work_item", gated)
        job = manager.submit(SWEEP_SPEC)
        with pytest.raises(ValueError, match="still"):
            manager.resume(job.id)
        gate.release(8)
        assert job.wait(timeout=120)


class TestOtherJobTypes:
    def test_workload_job_smoke(self, manager):
        job = manager.submit(
            {
                "type": "workload",
                "workloads": ["dnn-pipeline"],
                "arrangements": ["hexamesh"],
                "chiplets": [7],
                "mappers": ["round-robin"],
                "cycles": 80,
            }
        )
        result = manager.result(job.id, timeout=120)
        assert result["header"][0] == "arrangement"
        assert len(result["rows"]) == 1
        assert result["rows"][0][0] == "hexamesh"
        assert result["cache"]["candidates"] == 1

    def test_resilience_job_smoke(self, manager):
        job = manager.submit(
            {
                "type": "resilience",
                "kinds": ["grid"],
                "chiplets": 9,
                "failures": [0, 1],
                "samples": 1,
                "cycles": 80,
            }
        )
        result = manager.result(job.id, timeout=120)
        assert [row[2] for row in result["rows"]] == [0, 1]
        assert result["rows"][0][9] == 1.0  # baseline anchors at 1.0

    def test_figure7_job_smoke(self, manager):
        job = manager.submit({"type": "figure7", "max_chiplets": 5})
        result = manager.result(job.id, timeout=120)
        # Four concatenated experiment tables, each with its own header.
        assert result["csv"].count("experiment,series,") == 4
        assert result["metadata"]["mode"] == "analytical"
