"""Shared fixtures for the test-suite.

Besides the small arrangement/graph fixtures, this module owns the
**simulation-mode registry**: the single list of ways to run the
cycle-accurate simulator that every equivalence, invariant, golden-trace
and property suite parametrizes over.  Adding a new engine (or engine
mode, like the batched path) to ``FAST_SIM_MODES`` enrols it in all of
those grids at once.
"""

from __future__ import annotations

import pytest

from repro.arrangements.brickwall import generate_brickwall
from repro.arrangements.grid import generate_grid
from repro.arrangements.hexamesh import generate_hexamesh
from repro.graphs.model import ChipGraph
from repro.linkmodel.parameters import EvaluationParameters
from repro.noc.config import SimulationConfig

from fault_scenarios import FAULT_SCENARIOS
from sim_modes import ALL_SIM_MODES, FAST_SIM_MODES


@pytest.fixture(params=FAST_SIM_MODES)
def fast_sim_mode(request):
    """Every simulation mode that must be bit-identical to legacy."""
    return request.param


@pytest.fixture(params=ALL_SIM_MODES)
def sim_mode(request):
    """Every simulation mode, the legacy reference included."""
    return request.param


@pytest.fixture(params=FAULT_SCENARIOS)
def fault_scenario(request):
    """Every representative fault scenario of ``tests/fault_scenarios.py``."""
    return request.param


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current legacy-engine "
             "output instead of asserting against the committed fixtures",
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """Whether ``--update-goldens`` was passed (golden-trace suite seam)."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def small_grid():
    """A 3x3 regular grid arrangement."""
    return generate_grid(9, "regular")


@pytest.fixture
def small_brickwall():
    """A 3x3 regular brickwall arrangement."""
    return generate_brickwall(9, "regular")


@pytest.fixture
def small_hexamesh():
    """A one-ring (7-chiplet) regular HexaMesh arrangement."""
    return generate_hexamesh(7, "regular")


@pytest.fixture
def medium_hexamesh():
    """A two-ring (19-chiplet) regular HexaMesh arrangement."""
    return generate_hexamesh(19, "regular")


@pytest.fixture
def path_graph():
    """A simple path graph 0 - 1 - 2 - 3."""
    return ChipGraph(nodes=range(4), edges=[(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def cycle_graph():
    """A cycle graph on 6 nodes."""
    edges = [(i, (i + 1) % 6) for i in range(6)]
    return ChipGraph(nodes=range(6), edges=edges)


@pytest.fixture
def paper_parameters():
    """The evaluation parameters of Section VI of the paper."""
    return EvaluationParameters()


@pytest.fixture
def fast_sim_config():
    """A short-phase simulator configuration for quick functional tests."""
    return SimulationConfig(
        warmup_cycles=100,
        measurement_cycles=300,
        drain_cycles=800,
    )
