"""Cross-process and warm-restart guarantees of the result store.

The two properties the store-integration CI job asserts on every PR,
kept runnable locally: a warm re-run against a populated store performs
*zero* simulator invocations (cache-hit ratio 1.0 from the progress
tracker), and concurrent writer processes sharing one store directory
produce results bit-identical to a serial run with no corrupt or partial
entries left behind.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.parallel import BatchedSweepRunner, ParallelSweepRunner
from repro.noc.config import SimulationConfig
from repro.store import ResultStore, verify_store
from repro.telemetry import SweepProgressTracker

FAST_CONFIG = SimulationConfig(warmup_cycles=40, measurement_cycles=80, drain_cycles=160)

GRID = ParallelSweepRunner.grid(["grid", "hexamesh"], [7, 9], [0.05, 0.3], ["uniform"])

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _forbid_simulation(monkeypatch):
    """Make any simulator invocation fail the test loudly."""
    import repro.core.parallel as parallel_module

    def boom(*_args, **_kwargs):  # pragma: no cover - the assertion itself
        raise AssertionError("a warm run must not invoke the simulator")

    monkeypatch.setattr(parallel_module, "_evaluate_work_item", boom)
    monkeypatch.setattr(parallel_module, "_evaluate_batch_item", boom)


class TestWarmRunIsPure:
    def test_warm_rerun_simulates_nothing(self, tmp_path, monkeypatch):
        cold = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path).run(GRID)
        _forbid_simulation(monkeypatch)
        tracker = SweepProgressTracker(jobs=1)
        snapshots = []
        warm = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path).run(
            GRID,
            progress=lambda done, total, record: snapshots.append(
                tracker.update(done, total, record)
            ),
        )
        assert all(record.from_cache for record in warm)
        assert [r.result for r in warm] == [r.result for r in cold]
        final = snapshots[-1]
        assert final.cache_hit_ratio == 1.0
        assert final.cache_hits == len(GRID)
        assert final.fresh == 0

    def test_batched_runner_shares_the_same_store(self, tmp_path, monkeypatch):
        # Entries written by the per-point runner satisfy the batched
        # runner (and vice versa): one store serves every execution path.
        ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path).run(GRID)
        _forbid_simulation(monkeypatch)
        warm = BatchedSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path).run(GRID)
        assert all(record.from_cache for record in warm)


@pytest.mark.slow
class TestConcurrentWriters:
    def _sweep_argv(self, store_dir, csv_path):
        return [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "--kinds",
            "grid,hexamesh",
            "--chiplets",
            "7",
            "--rates",
            "0.05,0.3",
            "--cycles",
            "60",
            "--jobs",
            "2",
            "--cache-dir",
            str(store_dir),
            "--progress",
            "quiet",
            "--output",
            str(csv_path),
        ]

    def test_two_processes_sharing_one_store_match_a_serial_run(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        serial_csv = tmp_path / "serial.csv"
        serial = subprocess.run(
            self._sweep_argv(tmp_path / "serial-store", serial_csv),
            env=env,
            capture_output=True,
            text=True,
        )
        assert serial.returncode == 0, serial.stderr
        shared = tmp_path / "shared-store"
        runs = [
            subprocess.Popen(
                self._sweep_argv(shared, tmp_path / f"concurrent-{index}.csv"),
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            for index in range(2)
        ]
        for run in runs:
            _, stderr = run.communicate(timeout=300)
            assert run.returncode == 0, stderr.decode()
        reference = serial_csv.read_text()
        for index in range(2):
            assert (tmp_path / f"concurrent-{index}.csv").read_text() == reference
        # No corrupt or partial entries: every entry re-reads cleanly and
        # no temp files survive in the objects tree.
        store = ResultStore(str(shared))
        outcomes = verify_store(store, sample=0)
        assert all(outcome.ok for outcome in outcomes), outcomes
        assert store.stats().entries == 4
        assert store.stats().orphan_tmp == 0
        assert not (shared / "quarantine").exists()
