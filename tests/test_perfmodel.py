"""Unit tests for the analytical performance models."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.perfmodel.latency import packet_path_latency_cycles, zero_load_latency_cycles
from repro.perfmodel.throughput import (
    bisection_limited_saturation_fraction,
    channel_loads_per_unit_injection,
    saturation_throughput_fraction,
)


class TestPathLatency:
    def test_zero_hop_path(self):
        config = SimulationConfig()
        # injection + ejection local channels (1 each) plus one router (3).
        assert packet_path_latency_cycles(0, config) == pytest.approx(5.0)

    def test_single_hop_path(self):
        config = SimulationConfig()
        # 2 local + 2 routers * 3 + 1 link * 27 = 35.
        assert packet_path_latency_cycles(1, config) == pytest.approx(35.0)

    def test_per_hop_increment(self):
        config = SimulationConfig()
        delta = packet_path_latency_cycles(5, config) - packet_path_latency_cycles(4, config)
        assert delta == pytest.approx(config.per_hop_latency_cycles)

    def test_packet_size_adds_serialization(self):
        config = SimulationConfig(packet_size_flits=5)
        base = SimulationConfig(packet_size_flits=1)
        assert packet_path_latency_cycles(2, config) == pytest.approx(
            packet_path_latency_cycles(2, base) + 4
        )

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            packet_path_latency_cycles(-1, SimulationConfig())


class TestZeroLoadLatency:
    def test_two_chiplets(self):
        graph = ChipGraph(edges=[(0, 1)])
        # Pairs: 2 same-chiplet pairs at 5 cycles, 4 cross pairs at 35 cycles.
        expected = (2 * 5 + 4 * 35) / 6
        assert zero_load_latency_cycles(graph) == pytest.approx(expected)

    def test_single_chiplet_multiple_endpoints(self):
        graph = ChipGraph(nodes=[0])
        assert zero_load_latency_cycles(graph) == pytest.approx(5.0)

    def test_single_chiplet_single_endpoint_rejected(self):
        graph = ChipGraph(nodes=[0])
        config = SimulationConfig(endpoints_per_chiplet=1)
        with pytest.raises(ValueError):
            zero_load_latency_cycles(graph, config)

    def test_hexamesh_beats_grid_at_equal_count(self):
        grid = make_arrangement("grid", 64).graph
        hexamesh = make_arrangement("hexamesh", 64).graph
        assert zero_load_latency_cycles(hexamesh) < zero_load_latency_cycles(grid)

    def test_latency_grows_with_chiplet_count(self):
        small = make_arrangement("grid", 16).graph
        large = make_arrangement("grid", 100).graph
        assert zero_load_latency_cycles(large) > zero_load_latency_cycles(small)

    def test_disconnected_graph_rejected(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            zero_load_latency_cycles(graph)


class TestChannelLoads:
    def test_two_chiplet_loads(self):
        graph = ChipGraph(edges=[(0, 1)])
        loads = channel_loads_per_unit_injection(graph, endpoints_per_chiplet=2)
        # Each chiplet sends 2 * (2/3) flits per cycle across the single link
        # at unit injection rate: 2 endpoints x 2 remote destinations / 3.
        assert loads[(0, 1)] == pytest.approx(4.0 / 3.0)
        assert loads[(1, 0)] == pytest.approx(4.0 / 3.0)

    def test_loads_symmetric_on_symmetric_topology(self):
        graph = make_arrangement("grid", 16).graph
        loads = channel_loads_per_unit_injection(graph)
        for (u, v), load in loads.items():
            assert loads[(v, u)] == pytest.approx(load)

    def test_total_load_equals_total_hops(self):
        """Sum of channel loads equals injected flow times mean hop count."""

        graph = make_arrangement("hexamesh", 19).graph
        endpoints = 2 * graph.num_nodes
        loads = channel_loads_per_unit_injection(graph, endpoints_per_chiplet=2)
        total_load = sum(loads.values())
        # Flow between distinct routers per unit injection: each endpoint
        # sends (E - 2)/(E - 1) of its traffic to other routers...
        pair_flow = 2 * 2 / (endpoints - 1)
        expected = 0.0
        from repro.graphs.metrics import bfs_distances

        for source in graph.nodes():
            distances = bfs_distances(graph, source)
            expected += sum(
                pair_flow * hops for dest, hops in distances.items() if dest != source
            )
        assert total_load == pytest.approx(expected)

    def test_requires_contiguous_ids(self):
        graph = ChipGraph(nodes=[1, 2], edges=[(1, 2)])
        with pytest.raises(ValueError):
            channel_loads_per_unit_injection(graph)


class TestSaturationModels:
    def test_single_chiplet_saturates_at_capacity(self):
        graph = ChipGraph(nodes=[0])
        assert saturation_throughput_fraction(graph) == pytest.approx(1.0)
        assert bisection_limited_saturation_fraction(graph) == pytest.approx(1.0)

    def test_channel_load_fraction_for_two_chiplets(self):
        graph = ChipGraph(edges=[(0, 1)])
        assert saturation_throughput_fraction(graph) == pytest.approx(0.75)

    def test_bisection_fraction_grid(self):
        graph = make_arrangement("grid", 100, "regular").graph
        assert bisection_limited_saturation_fraction(graph) == pytest.approx(0.2)

    def test_bisection_fraction_uses_supplied_value(self):
        graph = make_arrangement("grid", 100, "regular").graph
        assert bisection_limited_saturation_fraction(
            graph, bisection_links=20
        ) == pytest.approx(0.4)

    def test_bisection_bound_is_never_below_channel_load_estimate(self):
        for kind, count in (("grid", 36), ("brickwall", 36), ("hexamesh", 37)):
            graph = make_arrangement(kind, count).graph
            assert (
                bisection_limited_saturation_fraction(graph)
                >= saturation_throughput_fraction(graph) - 1e-9
            )

    def test_hexamesh_beats_grid_on_both_models(self):
        grid = make_arrangement("grid", 61).graph
        hexamesh = make_arrangement("hexamesh", 61).graph
        assert saturation_throughput_fraction(hexamesh) > saturation_throughput_fraction(grid)
        assert bisection_limited_saturation_fraction(
            hexamesh
        ) > bisection_limited_saturation_fraction(grid)

    def test_fraction_capped_at_one(self):
        graph = ChipGraph(edges=[(0, 1)])
        config = SimulationConfig(endpoints_per_chiplet=1)
        assert bisection_limited_saturation_fraction(graph, config) == pytest.approx(1.0)

    def test_simulator_agrees_with_channel_load_model(self):
        """The cycle-accurate simulator saturates close to the channel-load bound."""
        from repro.noc.simulator import NocSimulator

        graph = make_arrangement("hexamesh", 19).graph
        config = SimulationConfig(
            warmup_cycles=300, measurement_cycles=700, drain_cycles=0
        )
        analytical = saturation_throughput_fraction(graph, config)
        simulated = NocSimulator(graph, config, injection_rate=1.0).run().accepted_flit_rate
        assert simulated == pytest.approx(analytical, rel=0.2)
