"""Unit tests for network assembly, routers and endpoints."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.network import Network
from repro.noc.simulator import NocSimulator


def _small_config(**overrides):
    defaults = dict(warmup_cycles=50, measurement_cycles=150, drain_cycles=400)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestNetworkAssembly:
    def test_router_and_endpoint_counts(self):
        graph = make_arrangement("grid", 9).graph
        network = Network(graph, _small_config())
        assert network.num_routers == 9
        assert network.num_endpoints == 18
        assert len(network.routers) == 9
        assert len(network.endpoints) == 18

    def test_endpoint_to_router_mapping(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, _small_config(endpoints_per_chiplet=3))
        assert network.endpoint_to_router == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_router_port_counts(self):
        graph = make_arrangement("hexamesh", 7).graph
        network = Network(graph, _small_config())
        center = network.routers[0]  # axial ordering puts a corner first
        for router in network.routers:
            degree = graph.degree(router.router_id)
            assert router.num_router_ports == degree
            assert router.num_ports == degree + 2

    def test_requires_contiguous_router_ids(self):
        graph = ChipGraph(nodes=[1, 2], edges=[(1, 2)])
        with pytest.raises(ValueError):
            Network(graph, _small_config())

    def test_requires_at_least_two_endpoints(self):
        graph = ChipGraph(nodes=[0])
        with pytest.raises(ValueError):
            Network(graph, _small_config(endpoints_per_chiplet=1))

    def test_traffic_pattern_size_mismatch_rejected(self):
        from repro.noc.traffic import UniformRandomTraffic

        graph = make_arrangement("grid", 4).graph
        with pytest.raises(ValueError):
            Network(graph, _small_config(), traffic=UniformRandomTraffic(99))

    def test_is_ejection_port_classification(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, _small_config())
        router = network.routers[0]
        assert not router.is_ejection_port(0)
        assert router.is_ejection_port(router.num_router_ports)


class TestRouterInvariants:
    def test_buffer_overflow_detected(self):
        graph = make_arrangement("grid", 4).graph
        config = _small_config(buffer_depth_flits=1)
        network = Network(graph, config, injection_rate=0.0)
        router = network.routers[0]
        from repro.noc.flit import Packet, build_flits

        packet = Packet(packet_id=1, source=0, destination=7, size_flits=1, creation_cycle=0)
        flit = build_flits(packet)[0]
        flit.vc = 0
        router.accept_flit(0, flit, now=0)
        other = build_flits(packet)[0]
        other.vc = 0
        with pytest.raises(RuntimeError, match="overflow"):
            router.accept_flit(0, other, now=0)

    def test_endpoint_credit_overflow_detected(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, _small_config(), injection_rate=0.0)
        endpoint = network.endpoints[0]
        with pytest.raises(RuntimeError, match="credit overflow"):
            endpoint.accept_credit(0)

    def test_endpoint_rejects_misrouted_flit(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, _small_config(), injection_rate=0.0)
        from repro.noc.flit import Packet, build_flits

        packet = Packet(packet_id=1, source=0, destination=5, size_flits=1, creation_cycle=0)
        flit = build_flits(packet)[0]
        with pytest.raises(RuntimeError, match="routing is broken"):
            network.endpoints[0].accept_flit(flit, now=0)


class TestFlitConservation:
    @pytest.mark.parametrize("kind,count", [("grid", 9), ("hexamesh", 7), ("brickwall", 9)])
    def test_conservation_after_simulation(self, kind, count):
        graph = make_arrangement(kind, count).graph
        simulator = NocSimulator(graph, _small_config(), injection_rate=0.1)
        simulator.run()
        simulator.network.verify_flit_conservation()

    def test_conservation_under_heavy_load(self):
        graph = make_arrangement("grid", 9).graph
        simulator = NocSimulator(graph, _small_config(), injection_rate=0.9)
        simulator.run()
        simulator.network.verify_flit_conservation()

    def test_all_measured_packets_delivered_at_low_load(self):
        graph = make_arrangement("hexamesh", 7).graph
        simulator = NocSimulator(graph, _small_config(), injection_rate=0.02)
        result = simulator.run()
        assert result.measured_delivery_ratio == pytest.approx(1.0)


class TestEndpointBehaviour:
    def test_injection_respects_offered_rate(self):
        graph = make_arrangement("grid", 4).graph
        config = _small_config(warmup_cycles=0, measurement_cycles=2000, drain_cycles=0)
        simulator = NocSimulator(graph, config, injection_rate=0.25)
        result = simulator.run()
        created_rate = sum(
            endpoint.created_packets for endpoint in simulator.network.endpoints
        ) / (2000 * simulator.network.num_endpoints)
        assert created_rate == pytest.approx(0.25, abs=0.03)
        assert result.throughput.offered_flit_rate == pytest.approx(0.25)

    def test_source_queue_grows_beyond_saturation(self):
        graph = make_arrangement("grid", 9).graph
        simulator = NocSimulator(graph, _small_config(drain_cycles=0), injection_rate=1.0)
        simulator.run()
        queued = sum(e.source_queue_length for e in simulator.network.endpoints)
        assert queued > 0
