"""Unit tests for repro.geometry.primitives."""


import pytest

from repro.geometry.primitives import Point, Rect


class TestPoint:
    def test_translation(self):
        assert Point(1.0, 2.0).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_points_are_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2


class TestRectConstruction:
    def test_basic_properties(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.x_max == pytest.approx(4.0)
        assert rect.y_max == pytest.approx(6.0)
        assert rect.area == pytest.approx(12.0)
        assert rect.center == Point(2.5, 4.0)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, -1)

    def test_from_center(self):
        rect = Rect.from_center(Point(0, 0), 2.0, 4.0)
        assert rect.x == pytest.approx(-1.0)
        assert rect.y == pytest.approx(-2.0)
        assert rect.center == Point(0, 0)

    def test_from_corners(self):
        rect = Rect.from_corners(Point(2, 3), Point(0, 1))
        assert (rect.x, rect.y, rect.width, rect.height) == (0, 1, 2, 2)

    def test_aspect_ratio_is_at_least_one(self):
        assert Rect(0, 0, 2, 4).aspect_ratio == pytest.approx(2.0)
        assert Rect(0, 0, 4, 2).aspect_ratio == pytest.approx(2.0)
        assert Rect(0, 0, 3, 3).aspect_ratio == pytest.approx(1.0)


class TestRectQueries:
    def test_contains_point_inside_and_boundary(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains_point(Point(1, 1))
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(2, 2))
        assert not rect.contains_point(Point(2.1, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 4, 4)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(3, 3, 2, 2))

    def test_overlap_area(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.overlap_area(Rect(5, 5, 1, 1)) == 0.0

    def test_touching_rects_do_not_overlap(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 1, 1)
        assert not a.overlaps(b)
        assert a.overlap_area(b) == pytest.approx(0.0)

    def test_overlapping_rects(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1.5, 1.5, 2, 2)
        assert a.overlaps(b)

    def test_union_bounds(self):
        union = Rect(0, 0, 1, 1).union_bounds(Rect(3, 4, 1, 1))
        assert (union.x, union.y, union.x_max, union.y_max) == (0, 0, 4, 5)

    def test_translated(self):
        moved = Rect(0, 0, 1, 2).translated(3, 4)
        assert (moved.x, moved.y, moved.width, moved.height) == (3, 4, 1, 2)

    def test_corner_points_are_counter_clockwise(self):
        corners = Rect(0, 0, 2, 1).corner_points()
        assert corners == (Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1))


class TestDistanceToEdge:
    def test_center_of_square(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.distance_to_edge(Point(2, 2)) == pytest.approx(2.0)

    def test_point_near_edge(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.distance_to_edge(Point(0.5, 2)) == pytest.approx(0.5)

    def test_point_on_boundary(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.distance_to_edge(Point(0, 2)) == pytest.approx(0.0)

    def test_rejects_outside_point(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).distance_to_edge(Point(5, 5))

    def test_rectangular_chiplet(self):
        rect = Rect(0, 0, 4.38, 3.65)
        # The centre is limited by the shorter dimension.
        assert rect.distance_to_edge(rect.center) == pytest.approx(3.65 / 2)
