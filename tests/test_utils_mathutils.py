"""Unit tests for repro.utils.mathutils."""

import pytest

from repro.utils.mathutils import (
    almost_equal,
    balanced_factor_pair,
    ceil_div,
    hexamesh_chiplet_count,
    hexamesh_rings_for_count,
    is_hexamesh_count,
    is_perfect_square,
    isqrt_floor,
)


class TestIsqrtFloor:
    def test_exact_squares(self):
        assert isqrt_floor(49) == 7

    def test_rounds_down(self):
        assert isqrt_floor(50) == 7
        assert isqrt_floor(99) == 9

    def test_zero(self):
        assert isqrt_floor(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            isqrt_floor(-1)


class TestIsPerfectSquare:
    @pytest.mark.parametrize("value", [0, 1, 4, 9, 16, 100, 10000])
    def test_squares(self, value):
        assert is_perfect_square(value)

    @pytest.mark.parametrize("value", [2, 3, 5, 99, 101, -4])
    def test_non_squares(self, value):
        assert not is_perfect_square(value)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_rejects_non_positive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)


class TestAlmostEqual:
    def test_exact_equality(self):
        assert almost_equal(1.0, 1.0)

    def test_within_relative_tolerance(self):
        assert almost_equal(1.0, 1.0 + 1e-12)

    def test_outside_tolerance(self):
        assert not almost_equal(1.0, 1.001)


class TestBalancedFactorPair:
    def test_perfect_square_returns_equal_pair(self):
        assert balanced_factor_pair(36) == (6, 6)

    def test_rectangular_count(self):
        assert balanced_factor_pair(12) == (3, 4)

    def test_prime_returns_none(self):
        assert balanced_factor_pair(13) is None

    def test_small_counts_return_none(self):
        assert balanced_factor_pair(2) is None
        assert balanced_factor_pair(3) is None

    def test_four(self):
        assert balanced_factor_pair(4) == (2, 2)

    def test_most_balanced_pair_is_chosen(self):
        # 24 = 4x6 is more balanced than 3x8 or 2x12.
        assert balanced_factor_pair(24) == (4, 6)


class TestHexameshCounts:
    def test_counts_follow_centered_hexagonal_series(self):
        assert [hexamesh_chiplet_count(r) for r in range(5)] == [1, 7, 19, 37, 61]

    def test_ring_count_inverse(self):
        for rings in range(7):
            count = hexamesh_chiplet_count(rings)
            assert hexamesh_rings_for_count(count) == rings

    def test_ring_count_for_intermediate_values(self):
        assert hexamesh_rings_for_count(8) == 1
        assert hexamesh_rings_for_count(18) == 1
        assert hexamesh_rings_for_count(19) == 2

    def test_is_hexamesh_count(self):
        assert is_hexamesh_count(1)
        assert is_hexamesh_count(7)
        assert is_hexamesh_count(37)
        assert not is_hexamesh_count(8)
        assert not is_hexamesh_count(36)
        assert not is_hexamesh_count(0)

    def test_negative_rings_rejected(self):
        with pytest.raises(ValueError):
            hexamesh_chiplet_count(-1)
