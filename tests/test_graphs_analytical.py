"""Unit tests for the closed-form proxy formulas (Section IV-D)."""

import math

import pytest

from repro.graphs.analytical import (
    ANALYTICAL_KINDS,
    asymptotic_bisection_improvement_percent,
    asymptotic_bisection_ratio,
    asymptotic_diameter_ratio,
    asymptotic_diameter_reduction_percent,
    bisection_bandwidth_formula,
    brickwall_bisection_bandwidth,
    brickwall_diameter,
    diameter_formula,
    grid_bisection_bandwidth,
    grid_diameter,
    has_regular_arrangement,
    hexamesh_bisection_bandwidth,
    hexamesh_diameter,
    honeycomb_bisection_bandwidth,
    honeycomb_diameter,
)


class TestDiameterFormulas:
    @pytest.mark.parametrize(
        "count, expected", [(4, 2), (9, 4), (16, 6), (25, 8), (100, 18)]
    )
    def test_grid(self, count, expected):
        assert grid_diameter(count) == expected

    @pytest.mark.parametrize(
        "count, expected", [(4, 2), (9, 3), (16, 5), (25, 6), (100, 14)]
    )
    def test_brickwall(self, count, expected):
        assert brickwall_diameter(count) == expected

    @pytest.mark.parametrize("count, expected", [(1, 0), (7, 2), (19, 4), (37, 6), (91, 10)])
    def test_hexamesh(self, count, expected):
        assert hexamesh_diameter(count) == expected

    def test_honeycomb_equals_brickwall(self):
        for count in (4, 9, 16, 49):
            assert honeycomb_diameter(count) == brickwall_diameter(count)

    def test_non_square_count_rejected(self):
        with pytest.raises(ValueError):
            grid_diameter(10)
        with pytest.raises(ValueError):
            brickwall_diameter(50)

    def test_non_hexamesh_count_rejected(self):
        with pytest.raises(ValueError):
            hexamesh_diameter(10)

    def test_dispatcher(self):
        assert diameter_formula("grid", 16) == 6
        assert diameter_formula("hexamesh", 37) == 6
        with pytest.raises(ValueError):
            diameter_formula("ring", 16)


class TestBisectionFormulas:
    @pytest.mark.parametrize("count, expected", [(4, 2.0), (16, 4.0), (100, 10.0)])
    def test_grid(self, count, expected):
        assert grid_bisection_bandwidth(count) == pytest.approx(expected)

    @pytest.mark.parametrize("count, expected", [(4, 3.0), (16, 7.0), (100, 19.0)])
    def test_brickwall(self, count, expected):
        assert brickwall_bisection_bandwidth(count) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "count, expected", [(7, 5.0), (19, 9.0), (37, 13.0), (91, 21.0)]
    )
    def test_hexamesh(self, count, expected):
        assert hexamesh_bisection_bandwidth(count) == pytest.approx(expected)

    def test_honeycomb_equals_brickwall(self):
        assert honeycomb_bisection_bandwidth(36) == brickwall_bisection_bandwidth(36)

    def test_dispatcher(self):
        assert bisection_bandwidth_formula("hexamesh", 37) == pytest.approx(13.0)


class TestAsymptotics:
    def test_grid_ratios_are_one(self):
        assert asymptotic_diameter_ratio("grid") == 1.0
        assert asymptotic_bisection_ratio("grid") == 1.0

    def test_brickwall_ratios(self):
        assert asymptotic_diameter_ratio("brickwall") == pytest.approx(0.75)
        assert asymptotic_bisection_ratio("brickwall") == pytest.approx(2.0)

    def test_hexamesh_ratios(self):
        assert asymptotic_diameter_ratio("hexamesh") == pytest.approx(1 / math.sqrt(3))
        assert asymptotic_bisection_ratio("hexamesh") == pytest.approx(4 / math.sqrt(3))

    def test_abstract_percentages(self):
        # The abstract quotes -42 % diameter and +130 % bisection bandwidth.
        assert asymptotic_diameter_reduction_percent("hexamesh") == pytest.approx(42.3, abs=0.1)
        assert asymptotic_bisection_improvement_percent("hexamesh") == pytest.approx(
            130.9, abs=0.1
        )
        assert asymptotic_diameter_reduction_percent("brickwall") == pytest.approx(25.0)
        assert asymptotic_bisection_improvement_percent("brickwall") == pytest.approx(100.0)

    def test_formula_ratio_converges_to_asymptote(self):
        # At N = 10^6 the finite-N ratio should be within 1 % of the limit.
        count = 1000**2
        ratio = brickwall_diameter(count) / grid_diameter(count)
        assert ratio == pytest.approx(asymptotic_diameter_ratio("brickwall"), rel=0.01)

    def test_hexamesh_formula_ratio_converges(self):
        rings = 500
        count = 1 + 3 * rings * (rings + 1)
        side = math.isqrt(count)
        grid_count = side * side
        ratio = hexamesh_diameter(count) / grid_diameter(grid_count)
        assert ratio == pytest.approx(asymptotic_diameter_ratio("hexamesh"), rel=0.01)


class TestApplicability:
    def test_regular_counts(self):
        assert has_regular_arrangement("grid", 49)
        assert not has_regular_arrangement("grid", 50)
        assert has_regular_arrangement("hexamesh", 61)
        assert not has_regular_arrangement("hexamesh", 60)

    def test_all_kinds_listed(self):
        assert set(ANALYTICAL_KINDS) == {"grid", "brickwall", "honeycomb", "hexamesh"}
