"""Unit tests for the lattice helpers behind the arrangement generators."""

import pytest

from repro.arrangements.lattice import (
    axial_arrangement,
    axial_disk,
    axial_distance,
    axial_neighbors,
    axial_ring,
    brickwall_arrangement,
    brickwall_neighbors,
    square_lattice_arrangement,
    square_lattice_neighbors,
)
from repro.geometry.adjacency import shared_edges


class TestSquareLattice:
    def test_neighbors(self):
        assert set(square_lattice_neighbors((0, 0))) == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_arrangement_counts(self):
        cells = [(r, c) for r in range(2) for c in range(3)]
        placement, graph = square_lattice_arrangement(cells, 1.0, 1.0)
        assert len(placement) == 6
        assert graph.num_edges == 7  # 3 vertical + 4 horizontal

    def test_duplicate_cells_collapse(self):
        placement, graph = square_lattice_arrangement([(0, 0), (0, 0), (0, 1)], 1.0, 1.0)
        assert len(placement) == 2

    def test_empty_cells_rejected(self):
        with pytest.raises(ValueError):
            square_lattice_arrangement([], 1.0, 1.0)

    def test_lattice_positions_recorded(self):
        placement, _ = square_lattice_arrangement([(1, 2)], 1.0, 1.0)
        assert placement[0].lattice_position == (1, 2)


class TestBrickwallLattice:
    def test_interior_cell_has_six_neighbors(self):
        assert len(brickwall_neighbors((1, 1))) == 6

    def test_even_and_odd_rows_have_different_vertical_neighbors(self):
        even = set(brickwall_neighbors((0, 1)))
        odd = set(brickwall_neighbors((1, 1)))
        assert (1, 0) in even and (1, 1) in even
        assert (0, 1) in odd and (0, 2) in odd

    def test_geometric_adjacency_matches_lattice_rule(self):
        cells = [(r, c) for r in range(3) for c in range(3)]
        placement, graph = brickwall_arrangement(cells, 1.0, 1.0)
        geometric = {(a, b) for a, b, _ in shared_edges(placement)}
        lattice = {tuple(sorted(edge)) for edge in graph.edges()}
        assert geometric == lattice

    def test_odd_rows_are_offset(self):
        placement, _ = brickwall_arrangement([(0, 0), (1, 0)], 1.0, 1.0)
        row0 = next(c for c in placement if c.lattice_position == (0, 0))
        row1 = next(c for c in placement if c.lattice_position == (1, 0))
        assert row1.rect.x - row0.rect.x == pytest.approx(0.5)


class TestAxialLattice:
    def test_axial_distance(self):
        assert axial_distance((0, 0), (0, 0)) == 0
        assert axial_distance((0, 0), (1, 0)) == 1
        assert axial_distance((0, 0), (1, -1)) == 1
        assert axial_distance((0, 0), (2, -1)) == 2
        assert axial_distance((-2, 2), (2, -2)) == 4

    def test_neighbors_are_at_distance_one(self):
        for neighbor in axial_neighbors((3, -1)):
            assert axial_distance((3, -1), neighbor) == 1

    def test_ring_size(self):
        assert len(axial_ring(0)) == 1
        assert len(axial_ring(1)) == 6
        assert len(axial_ring(3)) == 18

    def test_ring_cells_are_at_exact_distance(self):
        for radius in range(1, 5):
            for cell in axial_ring(radius):
                assert axial_distance((0, 0), cell) == radius

    def test_ring_walk_is_sequentially_adjacent(self):
        ring = axial_ring(3)
        for first, second in zip(ring, ring[1:]):
            assert axial_distance(first, second) == 1
        # The ring closes: last cell is adjacent to the first.
        assert axial_distance(ring[-1], ring[0]) == 1

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            axial_ring(-1)
        with pytest.raises(ValueError):
            axial_disk(-2)

    def test_disk_size_is_centered_hexagonal_number(self):
        for radius in range(5):
            assert len(axial_disk(radius)) == 1 + 3 * radius * (radius + 1)

    def test_geometric_adjacency_matches_lattice_rule(self):
        cells = axial_disk(2)
        placement, graph = axial_arrangement(cells, 1.0, 1.0)
        geometric = {(a, b) for a, b, _ in shared_edges(placement)}
        lattice = {tuple(sorted(edge)) for edge in graph.edges()}
        assert geometric == lattice

    def test_placement_has_no_overlaps(self):
        placement, _ = axial_arrangement(axial_disk(3), 1.2, 0.8)
        assert not placement.has_overlaps()
