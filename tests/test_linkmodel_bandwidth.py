"""Unit tests for the D2D link-bandwidth model (Section V of the paper)."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.linkmodel.bandwidth import (
    D2DLinkModel,
    data_wires,
    link_bandwidth_bps,
    wire_count,
)
from repro.linkmodel.parameters import (
    EvaluationParameters,
    LinkParameters,
    UCIE_ADVANCED_PACKAGE,
    UCIE_STANDARD_PACKAGE,
)


class TestElementaryFormulas:
    def test_wire_count(self):
        assert wire_count(1.2, 0.15) == 53

    def test_wire_count_zero_area(self):
        assert wire_count(0.0, 0.15) == 0

    def test_data_wires(self):
        assert data_wires(53, 12) == 41

    def test_data_wires_clamped_at_zero(self):
        assert data_wires(5, 12) == 0

    def test_link_bandwidth(self):
        assert link_bandwidth_bps(41, 16e9) == pytest.approx(656e9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wire_count(-1.0, 0.15)
        with pytest.raises(ValueError):
            wire_count(1.0, 0.0)
        with pytest.raises(ValueError):
            link_bandwidth_bps(10, 0.0)


class TestLinkParameters:
    def test_ucie_standard_preset(self):
        assert UCIE_STANDARD_PACKAGE.bump_pitch_mm == pytest.approx(0.15)
        assert UCIE_STANDARD_PACKAGE.non_data_wires == 12
        assert UCIE_STANDARD_PACKAGE.frequency_ghz == pytest.approx(16.0)

    def test_ucie_advanced_preset_has_finer_pitch(self):
        assert UCIE_ADVANCED_PACKAGE.bump_pitch_mm < UCIE_STANDARD_PACKAGE.bump_pitch_mm

    def test_with_pitch_and_frequency(self):
        modified = UCIE_STANDARD_PACKAGE.with_pitch(0.1).with_frequency(8e9)
        assert modified.bump_pitch_mm == pytest.approx(0.1)
        assert modified.frequency_ghz == pytest.approx(8.0)
        # Originals are unchanged (frozen dataclasses).
        assert UCIE_STANDARD_PACKAGE.bump_pitch_mm == pytest.approx(0.15)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkParameters(bump_pitch_mm=0.0, non_data_wires=12, frequency_hz=16e9)
        with pytest.raises(ValueError):
            LinkParameters(bump_pitch_mm=0.15, non_data_wires=-1, frequency_hz=16e9)


class TestEvaluationParameters:
    def test_paper_defaults(self):
        params = EvaluationParameters.paper_defaults()
        assert params.total_chiplet_area_mm2 == pytest.approx(800.0)
        assert params.power_bump_fraction == pytest.approx(0.4)
        assert params.link.bump_pitch_mm == pytest.approx(0.15)
        assert params.endpoints_per_chiplet == 2
        assert params.link_latency_cycles == 27
        assert params.router_latency_cycles == 3
        assert params.num_virtual_channels == 8
        assert params.buffer_depth_flits == 8

    def test_chiplet_area(self):
        params = EvaluationParameters()
        assert params.chiplet_area_mm2(100) == pytest.approx(8.0)
        assert params.chiplet_area_mm2(1) == pytest.approx(800.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationParameters(total_chiplet_area_mm2=-1.0)
        with pytest.raises(ValueError):
            EvaluationParameters(power_bump_fraction=1.0)


class TestD2DLinkModel:
    def test_grid_bandwidth_at_100_chiplets(self):
        """Check the end-to-end numbers for the paper's evaluation setting."""
        model = D2DLinkModel()
        estimate = model.estimate("grid", 100)
        # A_C = 8 mm², A_B = 1.2 mm², N_w = 53, N_dw = 41, B = 656 Gb/s.
        assert estimate.shape.area_mm2 == pytest.approx(8.0)
        assert estimate.num_wires == 53
        assert estimate.num_data_wires == 41
        assert estimate.bandwidth_gbps == pytest.approx(656.0)

    def test_hexamesh_has_lower_per_link_bandwidth(self):
        model = D2DLinkModel()
        grid = model.estimate("grid", 100)
        hexamesh = model.estimate("hexamesh", 100)
        assert hexamesh.bandwidth_gbps < grid.bandwidth_gbps

    def test_hand_optimized_small_designs(self):
        model = D2DLinkModel()
        # A 4-chiplet grid has maximum degree 2, so the hand-optimised split
        # gives each link half of the non-power area instead of a quarter.
        standard = model.estimate("grid", 4)
        optimized = model.estimate("grid", 4, max_links_per_chiplet=2)
        assert optimized.shape.link_sector_area_mm2 > standard.shape.link_sector_area_mm2
        assert optimized.bandwidth_gbps > standard.bandwidth_gbps

    def test_hand_optimization_threshold(self):
        model = D2DLinkModel()
        # Above the threshold the max-degree hint is ignored.
        above = model.estimate("grid", 16, max_links_per_chiplet=2)
        assert above.shape.layout_style == "grid"

    def test_estimate_for_arrangement_uses_max_degree(self):
        model = D2DLinkModel()
        arrangement = make_arrangement("grid", 4)
        estimate = model.estimate_for_arrangement(arrangement)
        assert estimate.shape.layout_style == "hand-optimized"
        assert estimate.shape.num_link_sectors == 2

    def test_full_global_bandwidth(self):
        model = D2DLinkModel()
        per_link = model.estimate("grid", 100).bandwidth_bps
        expected = 100 * 2 * per_link / 1e12
        assert model.full_global_bandwidth_tbps("grid", 100) == pytest.approx(expected)

    def test_micro_bump_technology_increases_bandwidth(self):
        standard = D2DLinkModel()
        advanced = D2DLinkModel(EvaluationParameters(link=UCIE_ADVANCED_PACKAGE))
        assert (
            advanced.estimate("grid", 64).bandwidth_gbps
            > standard.estimate("grid", 64).bandwidth_gbps
        )

    def test_bandwidth_units(self):
        estimate = D2DLinkModel().estimate("grid", 100)
        assert estimate.bandwidth_tbps == pytest.approx(estimate.bandwidth_gbps / 1000.0)

    def test_more_chiplets_means_less_bandwidth_per_link(self):
        model = D2DLinkModel()
        assert (
            model.estimate("hexamesh", 91).bandwidth_gbps
            < model.estimate("hexamesh", 37).bandwidth_gbps
        )
