"""Unit tests for experiment data series and table rendering."""

import pytest

from repro.evaluation.series import DataPoint, DataSeries, ExperimentResult, merge_results
from repro.evaluation.tables import format_table, render_experiment, render_series_summary


class TestDataSeries:
    def test_add_and_access(self):
        series = DataSeries(name="grid")
        series.add(1, 2.0, regularity="regular")
        series.add(2, 3.0)
        assert series.xs == [1.0, 2.0]
        assert series.ys == [2.0, 3.0]
        assert len(series) == 2
        assert series.points[0].annotations["regularity"] == "regular"

    def test_y_at(self):
        series = DataSeries(name="s", points=[DataPoint(4, 7.0)])
        assert series.y_at(4) == 7.0
        with pytest.raises(KeyError):
            series.y_at(5)

    def test_mean_y(self):
        series = DataSeries(name="s")
        series.add(0, 1.0)
        series.add(1, 3.0)
        assert series.mean_y() == pytest.approx(2.0)

    def test_mean_of_empty_series_raises(self):
        with pytest.raises(ValueError):
            DataSeries(name="s").mean_y()


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(
            experiment_id="FIGX",
            title="Test experiment",
            x_label="n",
            y_label="value",
        )
        series = DataSeries(name="a")
        series.add(1, 10.0)
        series.add(2, 20.0)
        result.series.append(series)
        return result

    def test_get_series(self):
        result = self._result()
        assert result.get_series("a").y_at(2) == 20.0
        with pytest.raises(KeyError):
            result.get_series("missing")

    def test_series_names(self):
        assert self._result().series_names() == ["a"]

    def test_to_csv_contains_all_points(self):
        csv_text = self._result().to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        assert lines[0].startswith("experiment,series")
        assert "FIGX" in lines[1]

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        self._result().write_csv(str(path))
        assert path.read_text().count("FIGX") == 2

    def test_merge_results(self):
        first = self._result()
        second = ExperimentResult("FIGY", "other", "n", "v")
        merged = merge_results([first, second])
        assert set(merged) == {"FIGX", "FIGY"}

    def test_merge_rejects_duplicates(self):
        with pytest.raises(ValueError):
            merge_results([self._result(), self._result()])


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "metric"], [["x", 1.0], ["long-name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long-name" in lines[3]

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_requires_columns(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_float_formatting(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.235" in table

    def test_render_experiment(self):
        result = ExperimentResult("FIGZ", "Render test", "n", "y")
        series = DataSeries(name="s")
        series.add(1, 5.0)
        result.series.append(series)
        text = render_experiment(result)
        assert "FIGZ" in text
        assert "Render test" in text
        assert "5.000" in text

    def test_render_experiment_row_limit(self):
        result = ExperimentResult("FIGZ", "Render test", "n", "y")
        series = DataSeries(name="s")
        for i in range(10):
            series.add(i, float(i))
        result.series.append(series)
        text = render_experiment(result, max_rows_per_series=2)
        assert text.count("\n") < 8

    def test_render_series_summary(self):
        result = ExperimentResult("FIGZ", "Summary test", "n", "y")
        series = DataSeries(name="s")
        series.add(1, 5.0)
        series.add(2, 15.0)
        result.series.append(series)
        text = render_series_summary(result)
        assert "10.000" in text  # mean
