"""Unit tests for repro.graphs.model.ChipGraph."""

import pytest

from repro.graphs.model import ChipGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = ChipGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_nodes_and_edges(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 1

    def test_add_edge_creates_missing_nodes(self):
        graph = ChipGraph()
        graph.add_edge(4, 5)
        assert graph.has_node(4)
        assert graph.has_node(5)
        assert graph.has_edge(5, 4)

    def test_self_loops_rejected(self):
        graph = ChipGraph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)

    def test_parallel_edges_collapse(self):
        graph = ChipGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        assert graph.num_edges == 1

    def test_add_existing_node_is_noop(self):
        graph = ChipGraph(nodes=[0])
        graph.add_node(0)
        assert graph.num_nodes == 1

    def test_from_adjacency(self):
        graph = ChipGraph.from_adjacency({0: [1, 2], 1: [0], 2: []})
        assert graph.num_edges == 2
        assert sorted(graph.neighbors(0)) == [1, 2]

    def test_from_edge_list_with_isolated_nodes(self):
        graph = ChipGraph.from_edge_list([(0, 1)], nodes=[0, 1, 2])
        assert graph.num_nodes == 3
        assert graph.degree(2) == 0


class TestQueries:
    def test_degree_and_neighbors(self):
        graph = ChipGraph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert sorted(graph.neighbors(0)) == [1, 2, 3]
        assert graph.degrees()[1] == 1

    def test_unknown_node_raises(self):
        graph = ChipGraph(nodes=[0])
        with pytest.raises(KeyError):
            graph.neighbors(7)
        with pytest.raises(KeyError):
            graph.degree(7)

    def test_edges_reported_once(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_contains_and_len_and_iter(self):
        graph = ChipGraph(nodes=[0, 1])
        assert 0 in graph
        assert 7 not in graph
        assert len(graph) == 2
        assert sorted(graph) == [0, 1]

    def test_remove_edge(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = ChipGraph(edges=[(0, 1)])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 2)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = ChipGraph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_nodes == 2
        assert clone.num_nodes == 3

    def test_subgraph(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2), (2, 3)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert not sub.has_node(0)

    def test_subgraph_unknown_node_raises(self):
        graph = ChipGraph(edges=[(0, 1)])
        with pytest.raises(KeyError):
            graph.subgraph([0, 5])

    def test_relabeled(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2)])
        relabeled = graph.relabeled({0: "a", 1: "b", 2: "c"})
        assert relabeled.has_edge("a", "b")
        assert relabeled.num_edges == 2

    def test_relabeled_requires_complete_injective_mapping(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2)])
        with pytest.raises(KeyError):
            graph.relabeled({0: "a", 1: "b"})
        with pytest.raises(ValueError):
            graph.relabeled({0: "a", 1: "a", 2: "c"})

    def test_cut_size(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert graph.cut_size({0, 1}) == 2
        assert graph.cut_size({0, 2}) == 4

    def test_cut_size_unknown_node_raises(self):
        graph = ChipGraph(edges=[(0, 1)])
        with pytest.raises(KeyError):
            graph.cut_size({9})


class TestNetworkxInterop:
    def test_round_trip(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2), (2, 0)])
        networkx_graph = graph.to_networkx()
        back = ChipGraph.from_networkx(networkx_graph)
        assert sorted(back.edges()) == sorted(graph.edges())
        assert back.num_nodes == graph.num_nodes

    def test_to_networkx_preserves_isolated_nodes(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        assert graph.to_networkx().number_of_nodes() == 3
