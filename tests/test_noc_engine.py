"""Determinism and equivalence of the cycle-loop engines.

The active-set and vectorized engines — and the batched multi-point path
— must be pure optimisations: under a fixed seed they produce
bit-identical :class:`SimulationResult`s to the legacy dense loop, across
arrangements, injection rates and traffic patterns, while actually
skipping idle work (which the engines' instrumentation counters expose).
The mode grid lives in ``tests/conftest.py`` (``fast_sim_mode``), so a
new engine joins every equivalence class here with one fixture edit.
"""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.noc.engine import (
    ENGINE_NAMES,
    ActiveSetEngine,
    PhaseSnapshots,
    run_legacy_loop,
)
from repro.noc.network import Network
from repro.noc.simulator import NocSimulator
from repro.noc.vec_engine import VectorizedEngine

from sim_modes import simulate_noc
from fault_scenarios import representative_faults

FAST_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300
)

EQUIVALENCE_GRID = [
    (kind, count, rate, traffic)
    for kind, count in [("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)]
    for rate in (0.05, 0.5)
    for traffic in ("uniform", "tornado")
]


def _representative_faults(graph, scenario: str):
    return representative_faults(graph, scenario, seed=13)


def _run(kind, count, rate, traffic, mode, config=FAST_CONFIG, faults=None):
    graph = make_arrangement(kind, count).graph
    return simulate_noc(
        graph, config, injection_rate=rate, traffic=traffic, faults=faults, mode=mode
    )


def _result(kind, count, rate, traffic, engine, config=FAST_CONFIG, faults=None):
    """Engine-specific helper for the fast-path suites (needs the simulator)."""
    graph = make_arrangement(kind, count).graph
    simulator = NocSimulator(
        graph, config, injection_rate=rate, traffic=traffic, faults=faults
    )
    return simulator, simulator.run(engine=engine)


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind,count,rate,traffic", EQUIVALENCE_GRID)
    def test_bit_identical_results(self, kind, count, rate, traffic, fast_sim_mode):
        _, legacy = _run(kind, count, rate, traffic, "legacy")
        _, fast = _run(kind, count, rate, traffic, fast_sim_mode)
        # Frozen dataclasses compare field by field, nested statistics
        # included — this is the bit-identical contract of the engines.
        assert legacy == fast

    def test_identical_across_repeated_runs(self, fast_sim_mode):
        _, first = _run("hexamesh", 7, 0.1, "uniform", fast_sim_mode)
        _, second = _run("hexamesh", 7, 0.1, "uniform", fast_sim_mode)
        assert first == second

    def test_engine_name_registry_is_stable(self):
        assert ENGINE_NAMES == ("active", "vectorized", "legacy")

    def test_different_seeds_differ(self):
        graph = make_arrangement("grid", 9).graph
        base = NocSimulator(graph, FAST_CONFIG, injection_rate=0.2).run()
        other_config = SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=99
        )
        other = NocSimulator(graph, other_config, injection_rate=0.2).run()
        assert base != other

    def test_zero_drain_equivalence(self, fast_sim_mode):
        config = SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=0
        )
        _, legacy = _run("grid", 9, 0.3, "uniform", "legacy", config)
        _, fast = _run("grid", 9, 0.3, "uniform", fast_sim_mode, config)
        assert legacy == fast

    def test_zero_injection_equivalence(self, fast_sim_mode):
        _, legacy = _run("grid", 9, 0.0, "uniform", "legacy")
        _, fast = _run("grid", 9, 0.0, "uniform", fast_sim_mode)
        # Latency statistics are all-NaN with no measured packets (and
        # NaN != NaN), so compare the discrete fields directly.
        assert legacy.throughput == fast.throughput
        assert legacy.cycles_simulated == fast.cycles_simulated
        assert legacy.measured_packets_created == fast.measured_packets_created == 0
        assert legacy.measured_packets_ejected == fast.measured_packets_ejected == 0
        assert legacy.packet_latency.is_empty and fast.packet_latency.is_empty

    def test_final_network_state_matches_legacy(self, fast_sim_mode):
        """Beyond the result summary: the networks end bit-identical too."""
        legacy_net, _ = _run("hexamesh", 7, 0.3, "uniform", "legacy")
        fast_net, _ = _run("hexamesh", 7, 0.3, "uniform", fast_sim_mode)
        assert [r.buffered_flits for r in legacy_net.routers] == [
            r.buffered_flits for r in fast_net.routers
        ]
        assert [r.forwarded_flits for r in legacy_net.routers] == [
            r.forwarded_flits for r in fast_net.routers
        ]
        assert [e.injected_flits for e in legacy_net.endpoints] == [
            e.injected_flits for e in fast_net.endpoints
        ]
        assert [e.ejected_flits for e in legacy_net.endpoints] == [
            e.ejected_flits for e in fast_net.endpoints
        ]
        legacy_pending = [c.pending() for c, _ in legacy_net.channel_sinks()]
        fast_pending = [c.pending() for c, _ in fast_net.channel_sinks()]
        assert [len(p) for p in legacy_pending] == [len(p) for p in fast_pending]
        fast_net.verify_flit_conservation()


class TestFaultedEngineEquivalence:
    """The bit-identical contract must also hold on degraded topologies."""

    @pytest.mark.parametrize(
        "kind,count",
        [("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)],
    )
    def test_bit_identical_results_under_faults(
        self, kind, count, fault_scenario, fast_sim_mode
    ):
        graph = make_arrangement(kind, count).graph
        faults = _representative_faults(graph, fault_scenario)
        _, legacy = _run(kind, count, 0.3, "uniform", "legacy", faults=faults)
        _, fast = _run(kind, count, 0.3, "uniform", fast_sim_mode, faults=faults)
        assert legacy == fast
        assert legacy.measured_packets_ejected > 0

    @pytest.mark.parametrize("traffic", ["uniform", "tornado"])
    def test_faulted_traffic_variants_match_legacy(self, traffic, fast_sim_mode):
        graph = make_arrangement("hexamesh", 7).graph
        faults = _representative_faults(graph, "single-link")
        _, legacy = _run("hexamesh", 7, 0.5, traffic, "legacy", faults=faults)
        _, fast = _run("hexamesh", 7, 0.5, traffic, fast_sim_mode, faults=faults)
        assert legacy == fast

    def test_faulted_final_network_state_matches_legacy(self, fast_sim_mode):
        graph = make_arrangement("grid", 9).graph
        faults = _representative_faults(graph, "single-router")
        legacy_net, _ = _run("grid", 9, 0.3, "uniform", "legacy", faults=faults)
        fast_net, _ = _run("grid", 9, 0.3, "uniform", fast_sim_mode, faults=faults)
        assert [r.buffered_flits for r in legacy_net.routers] == [
            r.buffered_flits for r in fast_net.routers
        ]
        assert [e.ejected_flits for e in legacy_net.endpoints] == [
            e.ejected_flits for e in fast_net.endpoints
        ]
        fast_net.verify_flit_conservation()

    def test_faulted_topology_shrinks_the_network(self):
        graph = make_arrangement("hexamesh", 7).graph
        faults = _representative_faults(graph, "single-router")
        simulator = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.2, traffic="uniform", faults=faults
        )
        result = simulator.run(engine="active")
        assert result.num_routers == 6
        assert simulator.network.num_routers == 6

    def test_no_channel_crosses_a_failed_link(self):
        """Packets cannot traverse a failed link: it has no channel at all."""
        graph = make_arrangement("grid", 9).graph
        faults = _representative_faults(graph, "single-link")
        simulator = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.3, traffic="uniform", faults=faults
        )
        simulator.run(engine="vectorized")
        degraded = simulator.degraded_topology
        failed = set(faults.failed_links)
        router_links = {
            degraded.original_edge(first, second)
            for first, second in degraded.graph.edges()
        }
        assert not router_links & failed
        assert all(graph.has_edge(*link) for link in router_links)


class TestActiveSetFastPath:
    def test_early_exit_when_drained(self):
        simulator, result = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        assert stats is not None
        # At 5% load the network drains long before the configured horizon.
        assert stats.early_exit_cycle is not None
        assert stats.cycles_executed < result.cycles_simulated
        # The reported horizon stays the configured one regardless.
        total = (
            FAST_CONFIG.warmup_cycles
            + FAST_CONFIG.measurement_cycles
            + FAST_CONFIG.drain_cycles
        )
        assert result.cycles_simulated == total

    def test_router_steps_are_skipped_when_idle(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        dense_router_steps = stats.cycles_executed * 9
        assert stats.router_steps < dense_router_steps

    def test_endpoint_steps_match_generation_phases(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        num_endpoints = simulator.network.num_endpoints
        generation_cycles = FAST_CONFIG.warmup_cycles + FAST_CONFIG.measurement_cycles
        # Endpoints step densely through warm-up + measurement (the RNG
        # contract) and never during the drain.
        assert stats.endpoint_steps == generation_cycles * num_endpoints

    def test_observers_are_detached_after_run(self):
        simulator, _ = _result("grid", 9, 0.1, "uniform", "active")
        for channel, _ in simulator.network.channel_sinks():
            assert channel.observer is None

    def test_legacy_loop_returns_full_horizon_snapshots(self):
        graph = make_arrangement("grid", 9).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        snapshots = run_legacy_loop(network, FAST_CONFIG)
        assert isinstance(snapshots, PhaseSnapshots)
        assert snapshots.cycles_executed == snapshots.total_cycles

    def test_engine_snapshot_counters_match_legacy(self):
        graph = make_arrangement("hexamesh", 7).graph
        legacy_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        legacy = run_legacy_loop(legacy_net, FAST_CONFIG)
        active_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        active = ActiveSetEngine(active_net, FAST_CONFIG).run()
        assert legacy.ejected_during_measurement == active.ejected_during_measurement
        assert legacy.injected_during_measurement == active.injected_during_measurement
        assert legacy.total_cycles == active.total_cycles

    def test_invalid_engine_name_rejected(self):
        graph = make_arrangement("grid", 4).graph
        simulator = NocSimulator(graph, FAST_CONFIG, injection_rate=0.1)
        with pytest.raises(ValueError):
            simulator.run(engine="warp-speed")


class TestVectorizedFastPath:
    def test_early_exit_when_drained(self):
        simulator, result = _result("grid", 9, 0.05, "uniform", "vectorized")
        stats = simulator.last_engine_stats
        assert stats is not None
        assert stats.early_exit_cycle is not None
        assert stats.cycles_executed < result.cycles_simulated
        # The reported horizon stays the configured one regardless.
        total = (
            FAST_CONFIG.warmup_cycles
            + FAST_CONFIG.measurement_cycles
            + FAST_CONFIG.drain_cycles
        )
        assert result.cycles_simulated == total

    def test_router_steps_are_skipped_when_idle(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "vectorized")
        stats = simulator.last_engine_stats
        dense_router_steps = stats.cycles_executed * 9
        assert stats.router_steps < dense_router_steps

    def test_endpoint_steps_match_generation_phases(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "vectorized")
        stats = simulator.last_engine_stats
        num_endpoints = simulator.network.num_endpoints
        generation_cycles = FAST_CONFIG.warmup_cycles + FAST_CONFIG.measurement_cycles
        # Generation draws run densely through warm-up + measurement (the
        # RNG contract) and never during the drain.
        assert stats.endpoint_steps == generation_cycles * num_endpoints

    def test_observers_are_detached_after_run(self):
        simulator, _ = _result("grid", 9, 0.1, "uniform", "vectorized")
        for channel, _ in simulator.network.channel_sinks():
            assert channel.observer is None

    def test_direct_engine_snapshots_match_legacy(self):
        graph = make_arrangement("hexamesh", 7).graph
        legacy_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        legacy = run_legacy_loop(legacy_net, FAST_CONFIG)
        vec_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        vectorized = VectorizedEngine(vec_net, FAST_CONFIG).run()
        assert legacy.ejected_during_measurement == vectorized.ejected_during_measurement
        assert legacy.injected_during_measurement == vectorized.injected_during_measurement
        assert legacy.total_cycles == vectorized.total_cycles

    def test_network_is_steppable_after_vectorized_run(self):
        """import_state must hand back a fully consistent object model."""
        graph = make_arrangement("grid", 9).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.3)
        VectorizedEngine(network, FAST_CONFIG).run()
        network.verify_flit_conservation()
        # Step the object model a few cycles past the run: a corrupt
        # write-back (bad credits, broken VC states) would trip one of the
        # router/endpoint RuntimeError guards here.
        total = (
            FAST_CONFIG.warmup_cycles
            + FAST_CONFIG.measurement_cycles
            + FAST_CONFIG.drain_cycles
        )
        for cycle in range(total, total + 50):
            network.deliver_channels(cycle)
            network.step_routers(cycle)
        network.verify_flit_conservation()

    def test_channel_target_metadata_covers_all_channels(self):
        graph = make_arrangement("grid", 4).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        sinks = network.channel_sinks()
        targets = network.channel_targets()
        assert len(sinks) == len(targets)
        assert [c for c, _ in sinks] == [c for c, _ in targets]
        kinds = {target[0] for _, target in targets}
        assert kinds == {
            "router_flit", "router_credit", "endpoint_flit", "endpoint_credit"
        }
