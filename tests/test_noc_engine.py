"""Determinism and equivalence of the cycle-loop engines.

The active-set engine must be a pure optimisation: under a fixed seed it
produces bit-identical :class:`SimulationResult`s to the legacy dense
loop, across arrangements, injection rates and traffic patterns, while
actually skipping idle work (which the engine's instrumentation counters
expose).
"""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.noc.engine import ActiveSetEngine, PhaseSnapshots, run_legacy_loop
from repro.noc.network import Network
from repro.noc.simulator import NocSimulator

FAST_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300
)

EQUIVALENCE_GRID = [
    (kind, count, rate, traffic)
    for kind, count in [("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)]
    for rate in (0.05, 0.5)
    for traffic in ("uniform", "tornado")
]


def _result(kind, count, rate, traffic, engine, config=FAST_CONFIG):
    graph = make_arrangement(kind, count).graph
    simulator = NocSimulator(graph, config, injection_rate=rate, traffic=traffic)
    return simulator, simulator.run(engine=engine)


class TestEngineEquivalence:
    @pytest.mark.parametrize("kind,count,rate,traffic", EQUIVALENCE_GRID)
    def test_bit_identical_results(self, kind, count, rate, traffic):
        _, legacy = _result(kind, count, rate, traffic, "legacy")
        _, active = _result(kind, count, rate, traffic, "active")
        # Frozen dataclasses compare field by field, nested statistics
        # included — this is the bit-identical contract of the engines.
        assert legacy == active

    def test_identical_across_repeated_runs(self):
        _, first = _result("hexamesh", 7, 0.1, "uniform", "active")
        _, second = _result("hexamesh", 7, 0.1, "uniform", "active")
        assert first == second

    def test_different_seeds_differ(self):
        graph = make_arrangement("grid", 9).graph
        base = NocSimulator(graph, FAST_CONFIG, injection_rate=0.2).run()
        other_config = SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=99
        )
        other = NocSimulator(graph, other_config, injection_rate=0.2).run()
        assert base != other

    def test_zero_drain_equivalence(self):
        config = SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=0
        )
        _, legacy = _result("grid", 9, 0.3, "uniform", "legacy", config)
        _, active = _result("grid", 9, 0.3, "uniform", "active", config)
        assert legacy == active

    def test_zero_injection_equivalence(self):
        _, legacy = _result("grid", 9, 0.0, "uniform", "legacy")
        _, active = _result("grid", 9, 0.0, "uniform", "active")
        # Latency statistics are all-NaN with no measured packets (and
        # NaN != NaN), so compare the discrete fields directly.
        assert legacy.throughput == active.throughput
        assert legacy.cycles_simulated == active.cycles_simulated
        assert legacy.measured_packets_created == active.measured_packets_created == 0
        assert legacy.measured_packets_ejected == active.measured_packets_ejected == 0
        assert legacy.packet_latency.is_empty and active.packet_latency.is_empty


class TestActiveSetFastPath:
    def test_early_exit_when_drained(self):
        simulator, result = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        assert stats is not None
        # At 5% load the network drains long before the configured horizon.
        assert stats.early_exit_cycle is not None
        assert stats.cycles_executed < result.cycles_simulated
        # The reported horizon stays the configured one regardless.
        total = (
            FAST_CONFIG.warmup_cycles
            + FAST_CONFIG.measurement_cycles
            + FAST_CONFIG.drain_cycles
        )
        assert result.cycles_simulated == total

    def test_router_steps_are_skipped_when_idle(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        dense_router_steps = stats.cycles_executed * 9
        assert stats.router_steps < dense_router_steps

    def test_endpoint_steps_match_generation_phases(self):
        simulator, _ = _result("grid", 9, 0.05, "uniform", "active")
        stats = simulator.last_engine_stats
        num_endpoints = simulator.network.num_endpoints
        generation_cycles = FAST_CONFIG.warmup_cycles + FAST_CONFIG.measurement_cycles
        # Endpoints step densely through warm-up + measurement (the RNG
        # contract) and never during the drain.
        assert stats.endpoint_steps == generation_cycles * num_endpoints

    def test_observers_are_detached_after_run(self):
        simulator, _ = _result("grid", 9, 0.1, "uniform", "active")
        for channel, _ in simulator.network.channel_sinks():
            assert channel.observer is None

    def test_legacy_loop_returns_full_horizon_snapshots(self):
        graph = make_arrangement("grid", 9).graph
        network = Network(graph, FAST_CONFIG, injection_rate=0.1)
        snapshots = run_legacy_loop(network, FAST_CONFIG)
        assert isinstance(snapshots, PhaseSnapshots)
        assert snapshots.cycles_executed == snapshots.total_cycles

    def test_engine_snapshot_counters_match_legacy(self):
        graph = make_arrangement("hexamesh", 7).graph
        legacy_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        legacy = run_legacy_loop(legacy_net, FAST_CONFIG)
        active_net = Network(graph, FAST_CONFIG, injection_rate=0.3)
        active = ActiveSetEngine(active_net, FAST_CONFIG).run()
        assert legacy.ejected_during_measurement == active.ejected_during_measurement
        assert legacy.injected_during_measurement == active.injected_during_measurement
        assert legacy.total_cycles == active.total_cycles

    def test_invalid_engine_name_rejected(self):
        graph = make_arrangement("grid", 4).graph
        simulator = NocSimulator(graph, FAST_CONFIG, injection_rate=0.1)
        with pytest.raises(ValueError):
            simulator.run(engine="warp-speed")
