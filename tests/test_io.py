"""Tests for serialisation, BookSim2 export and CSV helpers."""

import json

import pytest

from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.evaluation.series import DataSeries
from repro.graphs.metrics import diameter
from repro.io.booksim_export import (
    booksim_anynet_file,
    booksim_config_file,
    write_booksim_inputs,
)
from repro.io.csvio import read_series_csv, write_series_csv
from repro.io.serialization import (
    arrangement_from_dict,
    arrangement_to_dict,
    design_to_dict,
    load_arrangement_json,
    save_arrangement_json,
)


class TestArrangementSerialization:
    @pytest.mark.parametrize("kind,count", [("grid", 12), ("brickwall", 9), ("hexamesh", 19)])
    def test_round_trip_preserves_structure(self, kind, count):
        original = make_arrangement(kind, count)
        restored = arrangement_from_dict(arrangement_to_dict(original))
        assert restored.kind == original.kind
        assert restored.regularity == original.regularity
        assert restored.num_chiplets == original.num_chiplets
        assert sorted(restored.graph.edges()) == sorted(original.graph.edges())
        assert diameter(restored.graph) == diameter(original.graph)

    def test_round_trip_preserves_placement(self):
        original = make_arrangement("hexamesh", 7)
        restored = arrangement_from_dict(arrangement_to_dict(original))
        assert restored.placement is not None
        for chiplet in original.placement:
            other = restored.placement[chiplet.chiplet_id]
            assert other.rect.x == pytest.approx(chiplet.rect.x)
            assert other.lattice_position == chiplet.lattice_position

    def test_honeycomb_without_placement(self):
        original = make_arrangement("honeycomb", 9)
        restored = arrangement_from_dict(arrangement_to_dict(original))
        assert restored.placement is None
        assert restored.violates_shape_constraints

    def test_dictionary_is_json_serialisable(self):
        data = arrangement_to_dict(make_arrangement("honeycomb", 9))
        json.dumps(data)

    def test_file_round_trip(self, tmp_path):
        original = make_arrangement("grid", 16)
        path = tmp_path / "arrangement.json"
        save_arrangement_json(original, str(path))
        restored = load_arrangement_json(str(path))
        assert restored.num_chiplets == 16

    def test_design_to_dict(self):
        data = design_to_dict(ChipletDesign.create("hexamesh", 19))
        assert data["summary"]["diameter"] == 4
        assert data["parameters"]["bump_pitch_mm"] == pytest.approx(0.15)
        json.dumps(data)


class TestBooksimExport:
    def test_anynet_file_structure(self):
        arrangement = make_arrangement("grid", 4)
        text = booksim_anynet_file(arrangement)
        lines = text.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("router 0 node 0 1 router")

    def test_anynet_file_lists_all_neighbors(self):
        arrangement = make_arrangement("hexamesh", 7)
        text = booksim_anynet_file(arrangement)
        # The centre chiplet of a 7-chiplet HexaMesh has six neighbours.
        centre_line = [
            line for line in text.splitlines() if line.count("router") == 2 and
            len(line.split("router")[2].split()) == 6
        ]
        assert centre_line

    def test_anynet_endpoint_count_parameter(self):
        arrangement = make_arrangement("grid", 4)
        text = booksim_anynet_file(arrangement, endpoints_per_chiplet=3)
        assert "node 0 1 2 " in text or "node 0 1 2\n" in text or "node 0 1 2 router" in text

    def test_config_file_contains_paper_parameters(self):
        arrangement = make_arrangement("hexamesh", 19)
        text = booksim_config_file(arrangement)
        assert "num_vcs = 8;" in text
        assert "vc_buf_size = 8;" in text
        assert "topology = anynet;" in text
        assert "traffic = uniform;" in text

    def test_config_validates_injection_rate(self):
        arrangement = make_arrangement("grid", 4)
        with pytest.raises(ValueError):
            booksim_config_file(arrangement, injection_rate=2.0)

    def test_write_both_files(self, tmp_path):
        arrangement = make_arrangement("brickwall", 9)
        topology = tmp_path / "topo.anynet"
        config = tmp_path / "booksim.cfg"
        write_booksim_inputs(arrangement, str(topology), str(config))
        assert topology.read_text().count("router") >= 9
        assert "anynet" in config.read_text()


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        series = DataSeries(name="grid")
        series.add(1, 2.0)
        series.add(2, 4.0)
        other = DataSeries(name="hexamesh")
        other.add(1, 1.0)
        path = tmp_path / "series.csv"
        write_series_csv([series, other], str(path), x_label="n", y_label="value")
        restored = read_series_csv(str(path))
        names = {s.name for s in restored}
        assert names == {"grid", "hexamesh"}
        restored_grid = next(s for s in restored if s.name == "grid")
        assert restored_grid.ys == [2.0, 4.0]

    def test_read_invalid_file_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("just,two\n")
        with pytest.raises(ValueError):
            read_series_csv(str(path))
