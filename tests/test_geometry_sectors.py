"""Unit tests for repro.geometry.sectors (Figure 5 bump layouts)."""

import math

import pytest

from repro.geometry.primitives import Point, Rect
from repro.geometry.sectors import (
    BumpSector,
    SectorRole,
    grid_sector_layout,
    hex_sector_layout,
)
from repro.linkmodel.shape import solve_grid_shape, solve_hex_shape


class TestBumpSector:
    def test_rectangle_area_via_shoelace(self):
        sector = BumpSector(SectorRole.POWER, Rect(0, 0, 2, 3).corner_points())
        assert sector.area == pytest.approx(6.0)

    def test_triangle_area(self):
        sector = BumpSector(
            SectorRole.LINK, (Point(0, 0), Point(2, 0), Point(0, 2)), "north"
        )
        assert sector.area == pytest.approx(2.0)

    def test_link_sector_requires_direction(self):
        with pytest.raises(ValueError):
            BumpSector(SectorRole.LINK, Rect(0, 0, 1, 1).corner_points())

    def test_power_sector_must_not_have_direction(self):
        with pytest.raises(ValueError):
            BumpSector(SectorRole.POWER, Rect(0, 0, 1, 1).corner_points(), "north")

    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            BumpSector(SectorRole.POWER, (Point(0, 0), Point(1, 1)))

    def test_contains_point(self):
        sector = BumpSector(SectorRole.POWER, Rect(0, 0, 2, 2).corner_points())
        assert sector.contains_point(Point(1, 1))
        assert sector.contains_point(Point(0, 0))
        assert not sector.contains_point(Point(3, 1))

    def test_max_distance_to_chiplet_edge(self):
        chiplet = Rect(0, 0, 4, 4)
        sector = BumpSector(SectorRole.LINK, Rect(0, 1, 1, 2).corner_points(), "west")
        assert sector.max_distance_to_chiplet_edge(chiplet) == pytest.approx(1.0)


class TestGridSectorLayout:
    def test_layout_structure(self):
        layout = grid_sector_layout(Rect(0, 0, 4, 4), power_width=2.0)
        assert layout.link_count == 4
        assert layout.power_sector().area == pytest.approx(4.0)
        layout.validate()

    def test_sector_areas_match_formula(self):
        area = 16.0
        power_fraction = 0.4
        shape = solve_grid_shape(area, power_fraction)
        layout = grid_sector_layout(
            Rect(0, 0, shape.width_mm, shape.height_mm),
            power_width=math.sqrt(power_fraction * area),
        )
        for sector in layout.link_sectors():
            assert sector.area == pytest.approx(shape.link_sector_area_mm2, rel=1e-9)

    def test_bump_distance_matches_formula(self):
        area = 16.0
        power_fraction = 0.4
        shape = solve_grid_shape(area, power_fraction)
        layout = grid_sector_layout(
            Rect(0, 0, shape.width_mm, shape.height_mm),
            power_width=math.sqrt(power_fraction * area),
        )
        assert layout.max_bump_distance() == pytest.approx(shape.bump_distance_mm, rel=1e-9)

    def test_rejects_non_square_chiplet(self):
        with pytest.raises(ValueError, match="square"):
            grid_sector_layout(Rect(0, 0, 4, 3), power_width=1.0)

    def test_rejects_oversized_power_sector(self):
        with pytest.raises(ValueError):
            grid_sector_layout(Rect(0, 0, 4, 4), power_width=5.0)

    def test_sectors_tile_the_chiplet(self):
        layout = grid_sector_layout(Rect(0, 0, 4, 4), power_width=1.5)
        assert layout.total_sector_area() == pytest.approx(16.0)


class TestHexSectorLayout:
    def _layout(self, area=16.0, power_fraction=0.4):
        shape = solve_hex_shape(area, power_fraction)
        chiplet = Rect(0, 0, shape.width_mm, shape.height_mm)
        band_height = shape.width_mm / 2.0
        return shape, hex_sector_layout(chiplet, shape.bump_distance_mm, band_height)

    def test_layout_has_six_link_sectors(self):
        _, layout = self._layout()
        assert layout.link_count == 6
        layout.validate()

    def test_link_sector_areas_match_formula(self):
        shape, layout = self._layout()
        for sector in layout.link_sectors():
            assert sector.area == pytest.approx(shape.link_sector_area_mm2, rel=1e-9)

    def test_power_sector_area_matches_fraction(self):
        shape, layout = self._layout()
        assert layout.power_sector().area == pytest.approx(shape.power_area_mm2, rel=1e-9)

    def test_bump_distance_matches_formula(self):
        shape, layout = self._layout()
        assert layout.max_bump_distance() == pytest.approx(shape.bump_distance_mm, rel=1e-9)

    def test_sectors_tile_the_chiplet(self):
        shape, layout = self._layout()
        assert layout.total_sector_area() == pytest.approx(shape.area_mm2, rel=1e-9)

    def test_direction_labels_are_unique(self):
        _, layout = self._layout()
        labels = [s.link_direction for s in layout.link_sectors()]
        assert len(set(labels)) == 6

    def test_rejects_inconsistent_dimensions(self):
        with pytest.raises(ValueError):
            hex_sector_layout(Rect(0, 0, 4, 4), bump_distance=0.5, band_height=1.0)
