"""Unit tests for the chiplet-shape solver (Section IV-B of the paper)."""

import math

import pytest

from repro.linkmodel.shape import (
    solve_chiplet_shape,
    solve_grid_shape,
    solve_hand_optimized_shape,
    solve_hex_shape,
)


class TestGridShape:
    def test_square_chiplet(self):
        shape = solve_grid_shape(16.0, 0.4)
        assert shape.width_mm == pytest.approx(4.0)
        assert shape.height_mm == pytest.approx(4.0)
        assert shape.aspect_ratio == pytest.approx(1.0)

    def test_link_sector_area_formula(self):
        shape = solve_grid_shape(16.0, 0.4)
        assert shape.link_sector_area_mm2 == pytest.approx(0.25 * 0.6 * 16.0)

    def test_bump_distance_formula(self):
        shape = solve_grid_shape(16.0, 0.4)
        expected = (4.0 - math.sqrt(0.4 * 16.0)) / 2.0
        assert shape.bump_distance_mm == pytest.approx(expected)

    def test_four_link_sectors(self):
        assert solve_grid_shape(10.0, 0.3).num_link_sectors == 4

    def test_areas_add_up(self):
        shape = solve_grid_shape(12.0, 0.35)
        assert shape.power_area_mm2 + shape.total_link_area_mm2 == pytest.approx(12.0)

    def test_sector_layout_is_consistent(self):
        layout = solve_grid_shape(16.0, 0.4).sector_layout()
        layout.validate()
        assert layout.link_count == 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            solve_grid_shape(0.0, 0.4)
        with pytest.raises(ValueError):
            solve_grid_shape(16.0, 0.0)
        with pytest.raises(ValueError):
            solve_grid_shape(16.0, 1.0)


class TestHexShape:
    def test_paper_worked_example(self):
        """The worked example of Section IV-B: A_C = 16 mm², p_p = 0.4."""
        shape = solve_hex_shape(16.0, 0.4)
        assert shape.width_mm == pytest.approx(4.38, abs=0.01)
        assert shape.height_mm == pytest.approx(3.65, abs=0.01)
        assert shape.bump_distance_mm == pytest.approx(0.73, abs=0.01)

    def test_area_is_preserved(self):
        shape = solve_hex_shape(16.0, 0.4)
        assert shape.width_mm * shape.height_mm == pytest.approx(16.0)

    def test_link_sector_area_formula(self):
        shape = solve_hex_shape(16.0, 0.4)
        assert shape.link_sector_area_mm2 == pytest.approx(0.6 * 16.0 / 6.0)

    def test_equation_system_holds(self):
        """The solution satisfies the original equations (1)-(5)."""
        area, power_fraction = 23.0, 0.37
        shape = solve_hex_shape(area, power_fraction)
        band_height = shape.width_mm / 2.0  # L_B = W_C / 2   (eq. 2)
        power_width = shape.width_mm - 2.0 * shape.bump_distance_mm  # eq. 3
        # Equation (1): H_C = 2 D_B + L_B
        assert shape.height_mm == pytest.approx(2 * shape.bump_distance_mm + band_height)
        # Equation (4): H_C * W_C = A_C
        assert shape.height_mm * shape.width_mm == pytest.approx(area)
        # Equation (5): W_P * L_B = A_C * p_p
        assert power_width * band_height == pytest.approx(area * power_fraction)

    def test_six_link_sectors(self):
        assert solve_hex_shape(10.0, 0.3).num_link_sectors == 6

    def test_sector_layout_is_consistent(self):
        layout = solve_hex_shape(16.0, 0.4).sector_layout()
        layout.validate()
        assert layout.link_count == 6

    def test_chiplet_is_wider_than_tall(self):
        shape = solve_hex_shape(20.0, 0.4)
        assert shape.width_mm > shape.height_mm

    def test_areas_add_up(self):
        shape = solve_hex_shape(20.0, 0.45)
        assert shape.power_area_mm2 + shape.total_link_area_mm2 == pytest.approx(20.0)


class TestHandOptimizedShape:
    def test_splits_area_among_given_links(self):
        shape = solve_hand_optimized_shape(16.0, 0.4, num_links=3)
        assert shape.num_link_sectors == 3
        assert shape.link_sector_area_mm2 == pytest.approx(0.6 * 16.0 / 3.0)

    def test_no_sector_layout_geometry(self):
        with pytest.raises(ValueError):
            solve_hand_optimized_shape(16.0, 0.4, 2).sector_layout()

    def test_more_links_means_less_area_per_link(self):
        few = solve_hand_optimized_shape(16.0, 0.4, 2)
        many = solve_hand_optimized_shape(16.0, 0.4, 6)
        assert few.link_sector_area_mm2 > many.link_sector_area_mm2


class TestDispatcher:
    def test_grid_kind_uses_grid_layout(self):
        assert solve_chiplet_shape("grid", 16.0, 0.4).layout_style == "grid"

    @pytest.mark.parametrize("kind", ["brickwall", "honeycomb", "hexamesh"])
    def test_hex_kinds_use_hex_layout(self, kind):
        assert solve_chiplet_shape(kind, 16.0, 0.4).layout_style == "hex"

    def test_grid_has_more_area_per_link_than_hex(self):
        grid = solve_chiplet_shape("grid", 16.0, 0.4)
        hexagonal = solve_chiplet_shape("hexamesh", 16.0, 0.4)
        assert grid.link_sector_area_mm2 > hexagonal.link_sector_area_mm2
