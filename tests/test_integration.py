"""End-to-end integration tests across modules.

These tests exercise the complete pipeline the paper's evaluation uses:
arrangement generation -> graph proxies -> shape and link model ->
(analytical or cycle-accurate) performance -> comparison against the grid
baseline, and check that the paper's qualitative findings hold.
"""

import pytest

from repro.arrangements.base import ArrangementKind
from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.evaluation.performance import run_figure7
from repro.evaluation.proxies import run_figure6
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator


class TestProxyPipeline:
    def test_hexamesh_dominates_grid_on_both_proxies(self):
        figure6 = run_figure6(range(8, 40, 3))
        for count in range(8, 40, 3):
            grid = figure6.point(ArrangementKind.GRID, count)
            hexamesh = figure6.point(ArrangementKind.HEXAMESH, count)
            assert hexamesh.diameter <= grid.diameter
            assert hexamesh.bisection_bandwidth >= grid.bisection_bandwidth


class TestSimulationAgainstAnalyticalPipeline:
    @pytest.mark.parametrize("kind,count", [("grid", 16), ("brickwall", 16), ("hexamesh", 19)])
    def test_simulated_latency_matches_design_prediction(self, kind, count):
        design = ChipletDesign.create(kind, count)
        config = SimulationConfig(
            warmup_cycles=200, measurement_cycles=800, drain_cycles=1200
        )
        result = design.simulate(injection_rate=0.03, config=config)
        assert result.packet_latency.mean == pytest.approx(
            design.zero_load_latency(), rel=0.08
        )

    def test_simulated_ordering_matches_paper(self):
        """Cycle-accurate simulation: HM beats G in latency at similar size."""
        config = SimulationConfig(
            warmup_cycles=200, measurement_cycles=600, drain_cycles=1000
        )
        grid = NocSimulator(
            make_arrangement("grid", 36).graph, config, injection_rate=0.03
        ).run()
        hexamesh = NocSimulator(
            make_arrangement("hexamesh", 37).graph, config, injection_rate=0.03
        ).run()
        assert hexamesh.packet_latency.mean < grid.packet_latency.mean

    def test_simulated_throughput_ordering_matches_paper(self):
        """Cycle-accurate simulation: HM sustains a higher relative load than G."""
        config = SimulationConfig(
            warmup_cycles=300, measurement_cycles=600, drain_cycles=0
        )
        grid = NocSimulator(
            make_arrangement("grid", 36).graph, config, injection_rate=1.0
        ).run()
        hexamesh = NocSimulator(
            make_arrangement("hexamesh", 37).graph, config, injection_rate=1.0
        ).run()
        assert hexamesh.accepted_flit_rate > grid.accepted_flit_rate


class TestEndToEndEvaluation:
    def test_figure7_pipeline_consistency(self):
        figure7 = run_figure7(range(2, 26), mode="analytical")
        for count in (10, 19, 25):
            point = figure7.point("hexamesh", count)
            # Tb/s value is the product of its two factors.
            assert point.saturation_throughput_tbps == pytest.approx(
                point.saturation_fraction * point.full_global_bandwidth_tbps
            )
        # Normalised latency of the grid against itself is exactly 100 %.
        assert figure7.normalized_latency_percent("grid", 20) == pytest.approx(100.0)

    def test_design_facade_consistent_with_figure7(self):
        figure7 = run_figure7([37], mode="analytical")
        point = figure7.point("hexamesh", 37)
        design = ChipletDesign.create("hexamesh", 37)
        assert design.zero_load_latency() == pytest.approx(point.zero_load_latency_cycles)
        assert design.link_bandwidth_gbps == pytest.approx(point.link_bandwidth_gbps)
        assert design.saturation_throughput_tbps() == pytest.approx(
            point.saturation_throughput_tbps
        )

    def test_booksim_export_round_trip_against_simulator_topology(self, tmp_path):
        """The exported anynet file describes exactly the simulated topology."""
        from repro.io.booksim_export import booksim_anynet_file

        arrangement = make_arrangement("hexamesh", 19)
        text = booksim_anynet_file(arrangement)
        # Parse the file back into an edge set.
        edges = set()
        for line in text.strip().splitlines():
            parts = line.split("router")
            router_id = int(parts[1].split("node")[0])
            if len(parts) > 2:
                for neighbor in parts[2].split():
                    edges.add(tuple(sorted((router_id, int(neighbor)))))
        assert edges == {tuple(sorted(e)) for e in arrangement.graph.edges()}
