"""Unit tests for the routing tables (minimal + up*/down* escape)."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.model import ChipGraph
from repro.noc.routing import RoutingTables


class TestConstruction:
    def test_requires_contiguous_integer_ids(self):
        graph = ChipGraph(nodes=[1, 2, 3], edges=[(1, 2), (2, 3)])
        with pytest.raises(ValueError):
            RoutingTables(graph)

    def test_requires_connected_graph(self):
        graph = ChipGraph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(ValueError):
            RoutingTables(graph)

    def test_single_node_graph(self):
        tables = RoutingTables(ChipGraph(nodes=[0]))
        assert tables.num_routers == 1
        assert tables.average_minimal_hops() == 0.0


class TestMinimalRouting:
    def test_distances(self, path_graph):
        tables = RoutingTables(path_graph)
        assert tables.distance(0, 3) == 3
        assert tables.distance(2, 2) == 0

    def test_minimal_next_hops_on_path(self, path_graph):
        tables = RoutingTables(path_graph)
        assert tables.minimal_next_hops(0, 3) == (1,)
        assert tables.minimal_next_hops(0, 0) == ()

    def test_minimal_next_hops_multiple_options(self, cycle_graph):
        tables = RoutingTables(cycle_graph)
        # Opposite node of a 6-cycle can be reached both ways.
        assert set(tables.minimal_next_hops(0, 3)) == {1, 5}

    def test_next_hops_reduce_distance(self):
        arrangement = make_arrangement("hexamesh", 37)
        tables = RoutingTables(arrangement.graph)
        for source in range(0, 37, 5):
            for destination in range(0, 37, 7):
                if source == destination:
                    continue
                for hop in tables.minimal_next_hops(source, destination):
                    assert tables.distance(hop, destination) == tables.distance(
                        source, destination
                    ) - 1

    def test_average_minimal_hops_matches_metrics(self):
        from repro.graphs.metrics import average_distance

        arrangement = make_arrangement("brickwall", 16)
        tables = RoutingTables(arrangement.graph)
        assert tables.average_minimal_hops() == pytest.approx(
            average_distance(arrangement.graph)
        )


class TestEscapeRouting:
    def test_tree_root_has_no_parent(self, path_graph):
        tables = RoutingTables(path_graph)
        assert tables.tree_parent(0) is None
        assert tables.tree_parent(3) == 2

    def test_escape_path_reaches_destination(self):
        arrangement = make_arrangement("hexamesh", 19)
        tables = RoutingTables(arrangement.graph)
        for source in range(19):
            for destination in range(19):
                if source == destination:
                    continue
                path = tables.escape_path(source, destination)
                assert path[0] == source
                assert path[-1] == destination

    def test_escape_path_uses_graph_edges(self):
        arrangement = make_arrangement("grid", 25)
        graph = arrangement.graph
        tables = RoutingTables(graph)
        path = tables.escape_path(0, 24)
        for first, second in zip(path, path[1:]):
            assert graph.has_edge(first, second)

    def test_escape_path_is_up_then_down(self):
        """An up*/down* path never goes up again after its first down move."""
        arrangement = make_arrangement("brickwall", 36)
        tables = RoutingTables(arrangement.graph)
        for source in range(0, 36, 5):
            for destination in range(0, 36, 4):
                if source == destination:
                    continue
                path = tables.escape_path(source, destination)
                went_down = False
                for first, second in zip(path, path[1:]):
                    going_up = tables.tree_parent(first) == second
                    if going_up:
                        assert not went_down, (
                            f"path {path} goes up after going down"
                        )
                    else:
                        went_down = True

    def test_escape_routing_undefined_for_same_node(self, path_graph):
        tables = RoutingTables(path_graph)
        with pytest.raises(ValueError):
            tables.escape_next_hop(1, 1)

    def test_escape_paths_are_acyclic(self):
        arrangement = make_arrangement("hexamesh", 37)
        tables = RoutingTables(arrangement.graph)
        for source in range(0, 37, 3):
            for destination in range(0, 37, 6):
                if source == destination:
                    continue
                path = tables.escape_path(source, destination)
                assert len(path) == len(set(path))
