"""Multi-rate degradation surfaces: equivalence, aggregation, derived metrics.

The batching-gap regression suite: a resilience sweep over several
injection rates must produce **bit-identical** records whether it runs
per-point or batched, on any engine, with any worker count — and the
surface-shaped aggregation (per-rate baselines, the rate selector of
``curve()``, the saturation-rate-vs-faults derived curve) must stay
consistent with the flat summaries.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parallel import ParallelSweepRunner, SweepCandidate
from repro.noc.config import SimulationConfig
from repro.noc.engine import ENGINE_NAMES
from repro.resilience import (
    EXPLICIT_FAULT_TYPE,
    FAULT_TYPES,
    SUMMARY_FAULT_TYPES,
    normalize_injection_rates,
    resilience_grid,
    run_resilience_sweep,
    summarize_records,
)

FAST_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=160
)

#: >= 4 rates x >= 3 fault arrangements (healthy, one failure, two
#: failures), per the surface acceptance grid.
SURFACE_RATES = (0.05, 0.1, 0.2, 0.4)
SURFACE_FAILURES = (0, 1, 2)


def _surface_sweep(**overrides):
    params = dict(
        samples=1,
        config=FAST_CONFIG,
        injection_rates=SURFACE_RATES,
    )
    params.update(overrides)
    return run_resilience_sweep(("grid",), 9, SURFACE_FAILURES, **params)


@pytest.fixture(scope="module")
def reference_sweep():
    """The per-point legacy run every other mode must reproduce exactly."""
    return _surface_sweep(engine="legacy", batch=False, jobs=1)


class TestSurfaceEquivalence:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    @pytest.mark.parametrize("batch", [False, True], ids=["per-point", "batched"])
    def test_bit_identical_across_engines_and_batching(
        self, reference_sweep, engine, batch
    ):
        sweep = _surface_sweep(engine=engine, batch=batch)
        # Point-by-point: same candidates in the same order, each with an
        # identical simulation result.
        assert [r.candidate for r in sweep.records] == [
            r.candidate for r in reference_sweep.records
        ]
        assert [r.result for r in sweep.records] == [
            r.result for r in reference_sweep.records
        ]
        assert sweep.summaries == reference_sweep.summaries

    @pytest.mark.parametrize("batch", [False, True], ids=["per-point", "batched"])
    def test_jobs_do_not_change_the_surface(self, reference_sweep, batch):
        sweep = _surface_sweep(engine="vectorized", batch=batch, jobs=2)
        assert [r.result for r in sweep.records] == [
            r.result for r in reference_sweep.records
        ]
        assert sweep.summaries == reference_sweep.summaries

    def test_covers_healthy_and_faulted_points(self, reference_sweep):
        healthy = [
            r for r in reference_sweep.records if r.candidate.fault_set.is_empty
        ]
        faulted = [
            r for r in reference_sweep.records if not r.candidate.fault_set.is_empty
        ]
        assert len(healthy) == len(SURFACE_RATES)
        assert len(faulted) == 2 * len(SURFACE_RATES)


class TestSurfaceApi:
    def test_rates_are_recorded_ascending(self, reference_sweep):
        assert reference_sweep.rates() == tuple(sorted(SURFACE_RATES))

    def test_curve_requires_a_rate_selector_on_surfaces(self, reference_sweep):
        with pytest.raises(ValueError, match="injection rates"):
            reference_sweep.curve("grid")

    def test_curve_selects_one_rate(self, reference_sweep):
        curve = reference_sweep.curve("grid", injection_rate=0.1)
        assert [point.num_failures for point in curve] == list(SURFACE_FAILURES)
        assert all(point.injection_rate == 0.1 for point in curve)

    def test_curve_unknown_rate_lists_the_swept_rates(self, reference_sweep):
        with pytest.raises(ValueError, match="swept rates"):
            reference_sweep.curve("grid", injection_rate=0.33)

    def test_single_rate_sweeps_keep_the_selectorless_call_shape(self):
        sweep = _surface_sweep(injection_rates=None, injection_rate=0.1)
        curve = sweep.curve("grid")
        assert [point.num_failures for point in curve] == list(SURFACE_FAILURES)

    def test_surface_is_row_ordered(self, reference_sweep):
        surface = reference_sweep.surface("grid")
        assert len(surface) == len(SURFACE_FAILURES) * len(SURFACE_RATES)
        expected = [
            (failures, rate)
            for failures in SURFACE_FAILURES
            for rate in sorted(SURFACE_RATES)
        ]
        assert [(s.num_failures, s.injection_rate) for s in surface] == expected

    def test_baselines_anchor_per_rate(self, reference_sweep):
        for rate in SURFACE_RATES:
            curve = reference_sweep.curve("grid", injection_rate=rate)
            assert curve[0].num_failures == 0
            assert curve[0].latency_vs_baseline == pytest.approx(1.0)
            assert curve[0].throughput_vs_baseline == pytest.approx(1.0)
            assert not math.isnan(curve[-1].latency_vs_baseline)

    def test_saturation_curve_shape(self, reference_sweep):
        curve = reference_sweep.saturation_curve("grid", threshold=0.01)
        assert [point.num_failures for point in curve] == list(SURFACE_FAILURES)
        for point in curve:
            assert point.kind == "grid"
            assert point.threshold == 0.01
            # Virtually any accepted traffic clears a 1% threshold, so
            # every arrangement sustains the whole swept range.
            assert point.saturation_rate == max(SURFACE_RATES)

    def test_saturation_curve_is_nan_when_nothing_sustains(self, reference_sweep):
        curve = reference_sweep.saturation_curve("grid", threshold=1.0)
        # At threshold 1.0 a point must accept *all* offered traffic;
        # whether any rate clears that is workload-dependent, but the
        # curve must stay well-formed either way.
        for point in curve:
            assert math.isnan(point.saturation_rate) or (
                point.saturation_rate in SURFACE_RATES
            )

    def test_saturation_threshold_validated(self, reference_sweep):
        with pytest.raises(ValueError, match="threshold"):
            reference_sweep.saturation_curve("grid", threshold=0.0)
        with pytest.raises(ValueError, match="threshold"):
            reference_sweep.saturation_curve("grid", threshold=1.5)


class TestNormalizeInjectionRates:
    def test_none_keeps_the_single_rate(self):
        assert normalize_injection_rates(0.1, None) == (0.1,)

    def test_sorts_and_deduplicates(self):
        assert normalize_injection_rates(0.1, (0.2, 0.05, 0.2)) == (0.05, 0.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one rate"):
            normalize_injection_rates(0.1, ())

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            normalize_injection_rates(0.1, (0.5, 1.5))


class TestExplicitFaultType:
    def test_explicit_is_first_class_but_not_sampleable(self):
        assert EXPLICIT_FAULT_TYPE == "explicit"
        assert EXPLICIT_FAULT_TYPE in SUMMARY_FAULT_TYPES
        assert EXPLICIT_FAULT_TYPE not in FAULT_TYPES

    def test_summarize_accepts_explicit_and_rejects_unknown(self):
        candidates = [
            SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.1),
            SweepCandidate(
                kind="grid", num_chiplets=9, injection_rate=0.1,
                failed_links=((0, 1),),
            ),
        ]
        records = ParallelSweepRunner(FAST_CONFIG).run(candidates)
        summaries = summarize_records(records, fault_type=EXPLICIT_FAULT_TYPE)
        assert all(s.fault_type == "explicit" for s in summaries)
        assert [s.num_failures for s in summaries] == [0, 1]
        with pytest.raises(ValueError, match="fault_type"):
            summarize_records(records, fault_type="meteor")


# -- hypothesis properties over random (rates x fault counts) grids ----------

rate_lists = st.lists(
    st.sampled_from([round(0.01 * step, 2) for step in range(1, 41)]),
    min_size=1,
    max_size=6,
)
count_lists = st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=4)

_GRID_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGridProperties:
    @_GRID_SETTINGS
    @given(rates=rate_lists, counts=count_lists, samples=st.integers(1, 3))
    def test_grid_covers_every_rate_of_every_fault_arrangement(
        self, rates, counts, samples
    ):
        candidates = resilience_grid(
            ("hexamesh",), 19, counts, samples=samples,
            injection_rates=rates, seed=3,
        )
        unique_rates = tuple(sorted(set(rates)))
        unique_counts = sorted(set(counts))
        arrangements = sum(
            1 if count == 0 else samples for count in unique_counts
        )
        assert len(candidates) == arrangements * len(unique_rates)
        # Every fault arrangement is contiguous in the grid, covering the
        # full ascending rate scan — the exact adjacency the batched
        # runner's batch_key grouping relies on.
        for start in range(0, len(candidates), len(unique_rates)):
            group = candidates[start:start + len(unique_rates)]
            assert len({c.batch_key() for c in group}) == 1
            assert [c.injection_rate for c in group] == list(unique_rates)

    @_GRID_SETTINGS
    @given(rates=rate_lists, counts=count_lists)
    def test_fault_draws_are_rate_independent(self, rates, counts):
        multi = resilience_grid(
            ("hexamesh",), 19, counts, samples=2, injection_rates=rates, seed=3
        )
        single = resilience_grid(
            ("hexamesh",), 19, counts, samples=2, injection_rate=0.1, seed=3
        )
        # Collapsing the rate axis leaves exactly the per-arrangement
        # fault sets, in order: adding rates never changes what fails.
        multi_faults = []
        for candidate in multi:
            if not multi_faults or multi_faults[-1] != candidate.fault_set:
                multi_faults.append(candidate.fault_set)
        assert multi_faults == [candidate.fault_set for candidate in single]
