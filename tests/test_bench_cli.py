"""The benchmark harness: scenario registry, report schema and the CI gate."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main
from repro.noc.engine import ENGINE_NAMES


class TestScenarioRegistry:
    def test_scenario_list_is_deterministic(self):
        first = bench.available_scenarios()
        second = bench.available_scenarios()
        assert first == second
        assert first == tuple(s.name for s in bench.iter_scenarios())
        assert len(set(first)) == len(first)

    def test_quick_subset_selection(self):
        full = bench.available_scenarios()
        quick = bench.available_scenarios(quick=True)
        assert set(quick) <= set(full)
        # Both headline gate scenarios must be part of the CI quick
        # subset (the overload point joined it when the array kernel's
        # >= 3x floor landed; quick mode still shortens its phases).
        assert "fig7-hexamesh61-zero-load" in quick
        assert "fig7-hexamesh61-overload" in quick
        # Quick keeps the full-run order.
        assert [name for name in full if name in quick] == list(quick)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown bench scenario"):
            bench.run_bench(["no-such-scenario"])

    def test_invalid_repeat_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            bench.run_bench([], repeat=0)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            bench.run_bench([], engines=("warp-speed",))


class TestReportSchema:
    @pytest.fixture(scope="class")
    def report(self):
        # One real (small) scenario: doubles as an end-to-end check that
        # the harness drives all three engines and asserts equivalence.
        return bench.run_bench(
            ["workload-dnn-hexamesh37"], quick=True, revision="test-rev"
        )

    def test_report_layout(self, report):
        assert report["schema"] == bench.BENCH_SCHEMA
        assert report["rev"] == "test-rev"
        assert report["quick"] is True
        assert report["engines"] == list(ENGINE_NAMES)
        (scenario,) = report["scenarios"]
        assert scenario["name"] == "workload-dnn-hexamesh37"
        assert scenario["cycles"] > 0
        assert set(scenario["engines"]) == set(ENGINE_NAMES)
        for engine, row in scenario["engines"].items():
            assert row["wall_seconds"] > 0
            assert row["cycles_per_second"] > 0
            assert row["speedup_vs_legacy"] > 0
        assert scenario["engines"]["legacy"]["speedup_vs_legacy"] == 1.0

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "BENCH_test.json"
        bench.write_report(report, str(path))
        assert bench.load_report(str(path)) == json.loads(path.read_text())

    def test_markdown_table(self, report):
        table = bench.format_report_table(report)
        assert table.splitlines()[0].startswith("| scenario | engine |")
        assert "workload-dnn-hexamesh37" in table

    def test_make_baseline_shape(self, report):
        baseline = bench.make_baseline(
            report, min_speedups={("workload-dnn-hexamesh37", "vectorized"): 1.0}
        )
        assert baseline["schema"] == bench.BENCH_SCHEMA
        assert baseline["source_rev"] == "test-rev"
        assert baseline["quick"] is True
        rows = baseline["scenarios"]["workload-dnn-hexamesh37"]
        # The reference engine is never gated against itself.
        assert "legacy" not in rows
        assert rows["vectorized"]["min_speedup"] == 1.0
        assert "min_speedup" not in rows["active"]


def _fake_report(speedups: dict[str, float]) -> dict:
    return {
        "schema": bench.BENCH_SCHEMA,
        "rev": "fake",
        "quick": True,
        "scenarios": [
            {
                "name": name,
                "cycles": 100,
                "engines": {
                    "legacy": {"wall_seconds": 1.0, "cycles_per_second": 100.0,
                               "speedup_vs_legacy": 1.0},
                    "vectorized": {"wall_seconds": 1.0 / speedup,
                                   "cycles_per_second": 100.0 * speedup,
                                   "speedup_vs_legacy": speedup},
                },
            }
            for name, speedup in speedups.items()
        ],
    }


def _fake_baseline(expectations: dict[str, dict]) -> dict:
    return {
        "schema": bench.BENCH_SCHEMA,
        "tolerance": 0.25,
        "scenarios": {
            name: {"vectorized": entry} for name, entry in expectations.items()
        },
    }


def _batched_report(speedup: float, batched: float | None) -> dict:
    report = _fake_report({"s": speedup})
    if batched is not None:
        report["scenarios"][0]["engines"]["vectorized"].update({
            "per_point_wall_seconds": 1.0,
            "batched_wall_seconds": 1.0 / batched,
            "batched_speedup_vs_per_point": batched,
        })
    return report


class TestBatchedGate:
    def test_make_baseline_records_batched_speedup_and_floor(self):
        report = _batched_report(3.0, 2.5)
        baseline = bench.make_baseline(
            report, min_batched_speedups={("s", "vectorized"): 2.0}
        )
        entry = baseline["scenarios"]["s"]["vectorized"]
        assert entry["batched_speedup_vs_per_point"] == 2.5
        assert entry["min_batched_speedup"] == 2.0
        # Wall clocks are machine-bound and never enter the baseline.
        assert "batched_wall_seconds" not in entry

    def test_batched_speedup_only_recorded_where_floored(self):
        """A batched ratio without a configured floor stays ungated.

        Engines whose batched path shares only the topology build measure
        ~1x ratios that are pure machine noise; recording them would turn
        jitter into CI failures (the gate checks every recorded ratio).
        """
        report = _batched_report(3.0, 1.05)
        baseline = bench.make_baseline(report)  # no batched floors at all
        entry = baseline["scenarios"]["s"]["vectorized"]
        assert "batched_speedup_vs_per_point" not in entry
        assert "min_batched_speedup" not in entry

    def test_batched_regression_beyond_tolerance_fails(self):
        baseline = _fake_baseline(
            {"s": {"speedup_vs_legacy": 3.0, "batched_speedup_vs_per_point": 4.0}}
        )
        problems = bench.check_report(_batched_report(3.0, 2.9), baseline)
        assert len(problems) == 1 and "batched-vs-per-point" in problems[0]
        assert bench.check_report(_batched_report(3.0, 3.1), baseline) == []

    def test_batched_floor_fails_hard(self):
        baseline = _fake_baseline({
            "s": {
                "speedup_vs_legacy": 3.0,
                "batched_speedup_vs_per_point": 2.1,
                "min_batched_speedup": 2.0,
            }
        })
        problems = bench.check_report(_batched_report(3.0, 1.9), baseline)
        assert any("below the hard floor" in p for p in problems)

    def test_missing_batched_measurement_fails(self):
        baseline = _fake_baseline(
            {"s": {"speedup_vs_legacy": 3.0, "batched_speedup_vs_per_point": 2.4}}
        )
        problems = bench.check_report(_batched_report(3.0, None), baseline)
        assert any("measured none" in p for p in problems)


class TestGateScenarioMismatches:
    """Both scenario-set mismatches are surfaced; neither silently passes.

    The asymmetry is deliberate and documented on ``check_report``:
    baseline-only scenarios *fail* the gate (a dropped scenario must not
    green-light it), report-only scenarios *warn* (a new scenario cannot
    regress before a baseline records it, but the gate says so).
    """

    def test_report_only_scenario_warns_but_passes(self):
        report = _fake_report({"s": 3.0, "fresh": 2.0})
        baseline = _fake_baseline({"s": {"speedup_vs_legacy": 3.0}})
        assert bench.check_report(report, baseline) == []
        warnings = bench.check_report_warnings(report, baseline)
        assert len(warnings) == 1 and "'fresh'" in warnings[0]

    def test_baseline_only_scenario_fails_but_does_not_warn(self):
        report = _fake_report({"s": 3.0})
        baseline = _fake_baseline(
            {"s": {"speedup_vs_legacy": 3.0}, "gone": {"speedup_vs_legacy": 2.0}}
        )
        problems = bench.check_report(report, baseline)
        assert any("was not run" in p for p in problems)
        assert bench.check_report_warnings(report, baseline) == []

    def test_matching_scenario_sets_are_silent(self):
        report = _fake_report({"s": 3.0})
        baseline = _fake_baseline({"s": {"speedup_vs_legacy": 3.0}})
        assert bench.check_report(report, baseline) == []
        assert bench.check_report_warnings(report, baseline) == []

    def test_malformed_baseline_scenarios_produce_no_warnings(self):
        report = _fake_report({"s": 3.0})
        assert bench.check_report_warnings(report, {"scenarios": []}) == []


class TestRegressionGate:
    def test_passes_within_tolerance(self):
        report = _fake_report({"s": 3.2})
        baseline = _fake_baseline({"s": {"speedup_vs_legacy": 4.0}})
        assert bench.check_report(report, baseline) == []

    def test_fails_beyond_tolerance(self):
        report = _fake_report({"s": 2.9})  # 4.0 * 0.75 = 3.0 is the limit
        baseline = _fake_baseline({"s": {"speedup_vs_legacy": 4.0}})
        problems = bench.check_report(report, baseline)
        assert len(problems) == 1 and "regressed" in problems[0]

    def test_fails_below_hard_floor(self):
        report = _fake_report({"s": 1.9})
        baseline = _fake_baseline(
            {"s": {"speedup_vs_legacy": 2.0, "min_speedup": 2.0}}
        )
        problems = bench.check_report(report, baseline)
        assert any("hard" in p and "floor" in p for p in problems)

    def test_missing_scenario_is_a_regression(self):
        report = _fake_report({"s": 3.0})
        baseline = _fake_baseline(
            {"s": {"speedup_vs_legacy": 3.0}, "gone": {"speedup_vs_legacy": 2.0}}
        )
        problems = bench.check_report(report, baseline)
        assert any("was not run" in p for p in problems)

    def test_schema_mismatch_is_reported(self):
        report = _fake_report({"s": 3.0})
        baseline = {"schema": 999, "scenarios": {}}
        problems = bench.check_report(report, baseline)
        assert len(problems) == 1 and "schema" in problems[0]

    def test_committed_baseline_is_loadable_and_gated(self):
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "baseline.json",
        )
        baseline = bench.load_report(path)
        assert baseline["schema"] == bench.BENCH_SCHEMA
        # The committed baseline pins the headline >= 2x floor on the
        # Fig. 7 zero-load point (the acceptance criterion of the PR that
        # introduced the vectorized engine).
        gate = baseline["scenarios"]["fig7-hexamesh61-zero-load"]["vectorized"]
        assert gate["min_speedup"] >= 2.0
        assert gate["speedup_vs_legacy"] >= 2.0
        # The batched sweep pins its own headline floor: >= 2x over
        # per-point vectorized evaluation of the 16-point HexaMesh-61
        # sweep (this PR's acceptance criterion).
        batched_gate = baseline["scenarios"]["sweep-batched-hexamesh61"]["vectorized"]
        assert batched_gate["min_batched_speedup"] >= 2.0
        assert batched_gate["batched_speedup_vs_per_point"] >= 2.0
        # The overload point pins the >= 3x floor of the array-kernel PR:
        # the regime where the pre-kernel engine collapsed to 1.4x.
        overload_gate = baseline["scenarios"]["fig7-hexamesh61-overload"]["vectorized"]
        assert overload_gate["min_speedup"] >= 3.0
        assert overload_gate["speedup_vs_legacy"] >= 3.0
        # Every gated scenario is part of the CI quick subset.
        quick = set(bench.available_scenarios(quick=True))
        assert set(baseline["scenarios"]) <= quick


class TestBenchCli:
    def test_list_scenarios(self, capsys):
        assert main(["bench", "--list", "--quick"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(bench.available_scenarios(quick=True))

    def test_cli_emits_report_and_passes_own_gate(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        baseline_path = tmp_path / "baseline.json"
        code = main([
            "bench", "--quick", "--scenarios", "workload-dnn-hexamesh37",
            "--rev", "cli-test", "--output", str(output),
            "--write-baseline", str(baseline_path),
        ])
        assert code == 0
        report = json.loads(output.read_text())
        assert report["rev"] == "cli-test"
        assert [s["name"] for s in report["scenarios"]] == ["workload-dnn-hexamesh37"]
        # The written baseline round-trips through the gate.  Wall clocks
        # of sub-second scenarios are noisy, so give the re-measured run
        # generous slack — this tests the plumbing, not the machine.
        baseline = json.loads(baseline_path.read_text())
        for rows in baseline["scenarios"].values():
            for entry in rows.values():
                entry["speedup_vs_legacy"] *= 0.5
                entry.pop("min_speedup", None)
        baseline_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick", "--scenarios", "workload-dnn-hexamesh37",
            "--rev", "cli-test", "--output", str(output),
            "--check-against", str(baseline_path),
        ])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_cli_gate_failure_exits_nonzero(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        baseline_path = tmp_path / "impossible.json"
        baseline_path.write_text(json.dumps(_fake_baseline(
            {"workload-dnn-hexamesh37": {"speedup_vs_legacy": 10_000.0}}
        )))
        code = main([
            "bench", "--quick", "--scenarios", "workload-dnn-hexamesh37",
            "--output", str(output), "--check-against", str(baseline_path),
        ])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    @pytest.mark.parametrize("content", ["{not json", '["a", "list"]'])
    def test_cli_malformed_baseline_fails_fast(self, tmp_path, capsys, content):
        """A broken baseline file exits 1 with a message, never 0 or a
        traceback (the gate must not silently pass on an unreadable file)."""
        output = tmp_path / "BENCH_cli.json"
        baseline_path = tmp_path / "broken.json"
        baseline_path.write_text(content)
        code = main([
            "bench", "--quick", "--scenarios", "workload-dnn-hexamesh37",
            "--output", str(output), "--check-against", str(baseline_path),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "PERF GATE ERROR" in captured.err
        assert "perf gate passed" not in captured.out

    def test_cli_missing_baseline_fails_fast(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        code = main([
            "bench", "--quick", "--scenarios", "workload-dnn-hexamesh37",
            "--output", str(output),
            "--check-against", str(tmp_path / "does-not-exist.json"),
        ])
        assert code == 1
        assert "PERF GATE ERROR" in capsys.readouterr().err


class TestLoadReportGuard:
    """``load_report`` fails fast with a clear message, not a traceback."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(bench.BaselineError, match="cannot read baseline"):
            bench.load_report(str(tmp_path / "nope.json"))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        with pytest.raises(bench.BaselineError, match="not valid JSON"):
            bench.load_report(str(path))

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text('["schema", 1]')
        with pytest.raises(bench.BaselineError, match="must be a JSON object"):
            bench.load_report(str(path))
