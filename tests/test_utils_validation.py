"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)

    def test_rejects_bool_when_number_expected(self):
        with pytest.raises(TypeError, match="got bool"):
            check_type("count", True, int)

    def test_error_message_names_parameter(self):
        with pytest.raises(TypeError, match="my_param"):
            check_type("my_param", None, float)


class TestCheckPositive:
    def test_accepts_positive_int(self):
        assert check_positive("x", 5) == 5.0

    def test_accepts_positive_float(self):
        assert check_positive("x", 0.001) == 0.001

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", -1.5)

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive("x", "1")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 2.5) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            check_non_negative("x", -0.1)


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int("n", 1) == 1

    def test_respects_custom_minimum(self):
        assert check_positive_int("n", 5, minimum=5) == 5
        with pytest.raises(ValueError):
            check_positive_int("n", 4, minimum=5)

    def test_allows_zero_with_minimum_zero(self):
        assert check_positive_int("n", 0, minimum=0) == 0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 1.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)


class TestCheckFraction:
    def test_accepts_bounds_when_inclusive(self):
        assert check_fraction("p", 0.0) == 0.0
        assert check_fraction("p", 1.0) == 1.0

    def test_rejects_bounds_when_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction("p", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("p", 1.0, inclusive=False)

    def test_accepts_interior_value(self):
        assert check_fraction("p", 0.4, inclusive=False) == 0.4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction("p", 1.2)
        with pytest.raises(ValueError):
            check_fraction("p", -0.2)


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("mode", "fast", ("fast", "slow")) == "fast"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in_choices("mode", "medium", ("fast", "slow"))

    def test_works_with_generators(self):
        assert check_in_choices("n", 2, (i for i in range(4))) == 2
