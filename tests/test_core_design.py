"""Tests for the ChipletDesign facade."""

import pytest

from repro.arrangements.base import ArrangementKind, Regularity
from repro.arrangements.factory import make_arrangement
from repro.core.design import ChipletDesign
from repro.linkmodel.parameters import EvaluationParameters
from repro.noc.config import SimulationConfig


class TestConstruction:
    def test_create_by_kind_and_count(self):
        design = ChipletDesign.create("hexamesh", 37)
        assert design.kind is ArrangementKind.HEXAMESH
        assert design.num_chiplets == 37
        assert design.regularity is Regularity.REGULAR
        assert design.label == "HM-37 (regular)"

    def test_create_with_explicit_regularity(self):
        design = ChipletDesign.create("grid", 16, "irregular")
        assert design.regularity is Regularity.IRREGULAR

    def test_from_arrangement(self):
        arrangement = make_arrangement("brickwall", 25)
        design = ChipletDesign.from_arrangement(arrangement)
        assert design.arrangement is arrangement

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            ChipletDesign.create("grid", 0)


class TestProxies:
    def test_diameter_and_bisection(self):
        design = ChipletDesign.create("hexamesh", 37)
        assert design.diameter == 6
        assert design.bisection_bandwidth == pytest.approx(13.0)

    def test_bisection_estimated_for_irregular(self):
        design = ChipletDesign.create("hexamesh", 40)
        assert design.bisection_bandwidth > 0

    def test_average_neighbors(self):
        design = ChipletDesign.create("grid", 100)
        assert 3.0 < design.average_neighbors < 4.0

    def test_metrics_cached(self):
        design = ChipletDesign.create("grid", 16)
        assert design.metrics() is design.metrics()


class TestLinkModelIntegration:
    def test_chiplet_area_follows_parameters(self):
        design = ChipletDesign.create("grid", 100)
        assert design.chiplet_area_mm2 == pytest.approx(8.0)

    def test_custom_parameters(self):
        params = EvaluationParameters(total_chiplet_area_mm2=400.0)
        design = ChipletDesign.create("grid", 100, parameters=params)
        assert design.chiplet_area_mm2 == pytest.approx(4.0)

    def test_link_bandwidth_matches_paper_setting(self):
        design = ChipletDesign.create("grid", 100)
        assert design.link_bandwidth_gbps == pytest.approx(656.0)

    def test_full_global_bandwidth(self):
        design = ChipletDesign.create("grid", 100)
        assert design.full_global_bandwidth_tbps == pytest.approx(100 * 2 * 0.656)

    def test_chiplet_shape_matches_kind(self):
        assert ChipletDesign.create("grid", 64).chiplet_shape().num_link_sectors == 4
        assert ChipletDesign.create("hexamesh", 61).chiplet_shape().num_link_sectors == 6


class TestPerformance:
    def test_zero_load_latency_positive_and_ordered(self):
        grid = ChipletDesign.create("grid", 64)
        hexamesh = ChipletDesign.create("hexamesh", 64)
        assert hexamesh.zero_load_latency() < grid.zero_load_latency()

    def test_saturation_models(self):
        design = ChipletDesign.create("hexamesh", 37)
        assert design.saturation_fraction(model="channel_load") <= design.saturation_fraction()
        with pytest.raises(ValueError):
            design.saturation_fraction(model="magic")

    def test_saturation_throughput_tbps(self):
        design = ChipletDesign.create("grid", 100)
        assert design.saturation_throughput_tbps() == pytest.approx(
            design.saturation_fraction() * design.full_global_bandwidth_tbps
        )

    def test_simulation_config_inherits_parameters(self):
        params = EvaluationParameters(link_latency_cycles=10)
        design = ChipletDesign.create("grid", 9, parameters=params)
        assert design.simulation_config().link_latency_cycles == 10

    def test_simulate_end_to_end(self):
        design = ChipletDesign.create("hexamesh", 7)
        config = SimulationConfig(warmup_cycles=100, measurement_cycles=300, drain_cycles=600)
        result = design.simulate(injection_rate=0.05, config=config)
        assert result.measured_packets_ejected > 0
        assert result.packet_latency.mean == pytest.approx(
            design.zero_load_latency(), rel=0.15
        )

    def test_summary_keys(self):
        summary = ChipletDesign.create("brickwall", 36).summary()
        for key in (
            "label",
            "diameter",
            "bisection_bandwidth_links",
            "link_bandwidth_gbps",
            "zero_load_latency_cycles",
            "saturation_throughput_tbps",
        ):
            assert key in summary
