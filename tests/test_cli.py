"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfoAndCompare:
    def test_info(self, capsys):
        assert main(["info", "hexamesh", "19"]) == 0
        output = capsys.readouterr().out
        assert "diameter" in output
        assert "link_bandwidth_gbps" in output

    def test_compare(self, capsys):
        assert main(["compare", "hexamesh", "19", "--baseline", "grid"]) == 0
        output = capsys.readouterr().out
        assert "HM-19" in output
        assert "diameter_reduction_percent" in output

    def test_invalid_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "torus", "16"])

    def test_invalid_count_reports_error(self, capsys):
        assert main(["info", "grid", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestFigureCommand:
    def test_figure6_to_stdout(self, capsys):
        assert main(["figure", "6", "--max-chiplets", "10"]) == 0
        output = capsys.readouterr().out
        assert "FIG6a" in output
        assert "FIG6b" in output

    def test_figure7_to_file(self, tmp_path, capsys):
        target = tmp_path / "fig7.csv"
        assert main(["figure", "7", "--max-chiplets", "8", "--output", str(target)]) == 0
        content = target.read_text()
        assert "FIG7a" in content
        assert "FIG7d" in content


class TestSimulateCommand:
    def test_simulate_small_design(self, capsys):
        assert main(
            ["simulate", "grid", "4", "--injection-rate", "0.05", "--cycles", "300"]
        ) == 0
        output = capsys.readouterr().out
        assert "avg packet latency" in output
        assert "throughput [Tb/s]" in output


class TestExportCommand:
    def test_export_svg_and_booksim(self, tmp_path, capsys):
        svg = tmp_path / "view.svg"
        topology = tmp_path / "net.anynet"
        config = tmp_path / "booksim.cfg"
        code = main(
            [
                "export",
                "hexamesh",
                "7",
                "--svg",
                str(svg),
                "--booksim-topology",
                str(topology),
                "--booksim-config",
                str(config),
            ]
        )
        assert code == 0
        assert svg.read_text().startswith("<svg")
        assert "router" in topology.read_text()

    def test_export_requires_some_target(self, capsys):
        assert main(["export", "grid", "4"]) == 2

    def test_export_booksim_needs_both_paths(self, tmp_path):
        assert main(
            ["export", "grid", "4", "--booksim-topology", str(tmp_path / "t.anynet")]
        ) == 2

    def test_export_honeycomb_svg_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["export", "honeycomb", "9", "--svg", str(tmp_path / "h.svg")]
        ) == 2


class TestFeasibilityCommand:
    def test_feasible_design_returns_zero(self, capsys):
        assert main(["feasibility", "hexamesh", "37"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_interposer_flag(self, capsys):
        assert main(["feasibility", "grid", "100", "--silicon-interposer"]) == 0


class TestBatchFlag:
    def test_sweep_batch_matches_per_point_csv(self, tmp_path):
        per_point = tmp_path / "per_point.csv"
        batched = tmp_path / "batched.csv"
        base = ["sweep", "--kinds", "grid", "--chiplets", "9",
                "--rates", "0.05,0.2", "--cycles", "200"]
        assert main(base + ["--output", str(per_point)]) == 0
        assert main(base + ["--batch", "--output", str(batched)]) == 0
        # Batching is an amortisation, never a semantic change: the CSV
        # (latencies, throughput, delivery ratios) is byte-identical.
        assert batched.read_text() == per_point.read_text()

    def test_sweep_regularity_changes_the_swept_arrangement(self, tmp_path):
        # 12 chiplets admit both a semi-regular and an irregular grid, so
        # forcing the class must change the simulated topology (and with
        # it the CSV), while an unconstrained run picks the best class.
        best = tmp_path / "best.csv"
        irregular = tmp_path / "irregular.csv"
        base = ["sweep", "--kinds", "grid", "--chiplets", "12",
                "--rates", "0.1", "--cycles", "200"]
        assert main(base + ["--output", str(best)]) == 0
        assert main(
            base + ["--regularity", "irregular", "--output", str(irregular)]
        ) == 0
        assert irregular.read_text() != best.read_text()

    def test_unknown_regularity_rejected_by_the_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--kinds", "grid", "--chiplets", "9",
                  "--regularity", "fractal"])
        assert "--regularity" in capsys.readouterr().err

    def test_figure6_warns_about_ignored_batch_flag(self, capsys):
        assert main(["figure", "6", "--max-chiplets", "6", "--batch"]) == 0
        assert "--batch" in capsys.readouterr().err

    def test_figure7_analytical_warns_about_ignored_batch_flag(self, capsys):
        assert main(["figure", "7", "--max-chiplets", "6", "--batch"]) == 0
        assert "--batch" in capsys.readouterr().err
