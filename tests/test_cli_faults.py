"""The ``hexamesh faults`` subcommand: degradation tables and fail-fast errors."""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.cli import main

FAST = ["--cycles", "120", "--samples", "1"]


class TestFaultsCommand:
    def test_degradation_table_for_three_arrangements(self, capsys):
        exit_code = main(
            ["faults", "--kinds", "grid,brickwall,hexamesh", "--chiplets", "16",
             "--failures", "0,1", *FAST]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "latency vs healthy" in out
        for kind in ("grid", "brickwall", "hexamesh"):
            assert kind in out
        # Healthy rows anchor at exactly 1.000x.
        assert out.count("1.000x") >= 6

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "resilience.csv"
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9", "--failures", "0,1",
             "--output", str(target), *FAST]
        )
        assert exit_code == 0
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("kind,chiplets,failures")
        assert len(lines) == 3  # header + two failure counts
        # The ratio columns are plain floats in CSV mode (the 'x' suffix
        # is table-display only), so the file loads numerically.
        for line in lines[1:]:
            latency_ratio, throughput_ratio = line.split(",")[-2:]
            float(latency_ratio)
            float(throughput_ratio)
        assert "wrote" in capsys.readouterr().out

    def test_explicit_fault_set(self, capsys):
        graph = make_arrangement("grid", 9).graph
        link = graph.edges()[0]
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", f"{link[0]}-{link[1]}", *FAST]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        # Baseline row plus the explicit single-link-fault row.
        assert " 0 " in out.replace("|", " ")
        assert " 1 " in out.replace("|", " ")

    def test_explicit_fault_csv_round_trip(self, tmp_path):
        # The explicit path labels its summaries with the first-class
        # "explicit" fault type; its surface-shaped CSV must parse back
        # numerically, rate column included.
        graph = make_arrangement("grid", 9).graph
        link = graph.edges()[0]
        target = tmp_path / "explicit.csv"
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", f"{link[0]}-{link[1]}",
             "--injection-rates", "0.05,0.2",
             "--output", str(target), *FAST]
        )
        assert exit_code == 0
        lines = target.read_text().strip().splitlines()
        header = lines[0].split(",")
        assert header[:5] == ["kind", "chiplets", "failures", "rate", "samples"]
        rows = [line.split(",") for line in lines[1:]]
        # Surface shape: (healthy, faulted) x both rates.
        assert [(row[2], row[3]) for row in rows] == [
            ("0", "0.05"), ("0", "0.2"), ("1", "0.05"), ("1", "0.2"),
        ]
        for row in rows:
            for value in row[1:]:
                float(value)  # every non-kind column parses numerically

    def test_sampled_multi_rate_surface_table(self, capsys):
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--failures", "0,1", "--injection-rates", "0.05,0.1", *FAST]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "rate" in out
        # Each failure count appears at both rates, each anchored on the
        # same-rate healthy baseline.
        assert out.count("0.050") >= 2
        assert out.count("0.100") >= 2
        assert out.count("1.000x") >= 4

    def test_explicit_mode_warns_about_ignored_sampling_flags(self, capsys):
        graph = make_arrangement("grid", 9).graph
        link = graph.edges()[0]
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", f"{link[0]}-{link[1]}",
             "--failures", "0,1,2", "--samples", "5", "--cycles", "120"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "--failures" in captured.err
        assert "--samples" in captured.err
        assert "only apply to sampled sweeps" in captured.err

    def test_router_fault_type(self, capsys):
        exit_code = main(
            ["faults", "--kinds", "hexamesh", "--chiplets", "19",
             "--failures", "0,1", "--fault-type", "router", *FAST]
        )
        assert exit_code == 0
        assert "hexamesh" in capsys.readouterr().out


class TestFaultsFailFast:
    def test_unknown_link_is_a_clean_error(self, capsys):
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", "0-99", *FAST]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "failed link 0-99 is not a link of the topology" in err

    def test_isolating_fault_reports_the_router(self, capsys):
        # Failing every neighbour of router 0 isolates its endpoints.
        graph = make_arrangement("grid", 9).graph
        routers = ",".join(str(n) for n in sorted(graph.neighbors(0)))
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-routers", routers, *FAST]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "isolates router 0" in err
        assert "can neither send nor receive" in err

    @pytest.mark.parametrize("spec", ["", " ", ","])
    def test_empty_explicit_fault_spec_is_a_clean_error(self, spec, capsys):
        # --fail-links "" (e.g. an unset shell variable) must not silently
        # degrade into a healthy-only sweep.
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", spec, *FAST]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "name no faults" in err

    def test_malformed_link_spec_is_a_clean_error(self, capsys):
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-links", "0:1", *FAST]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "<router>-<router>" in err

    def test_unknown_kind_fails_before_simulation(self, capsys):
        exit_code = main(["faults", "--kinds", "moebius", *FAST])
        assert exit_code == 2
        assert "kind" in capsys.readouterr().err

    def test_disconnecting_explicit_fault_names_unreachable_routers(self, capsys):
        # Find a router triple whose removal splits the 3x3 grid into
        # components of >= 2 routers each (so the disconnection check, not
        # the isolation check, fires) and feed it through the CLI.
        import itertools

        from repro.noc.faults import FaultedTopologyError, FaultSet

        graph = make_arrangement("grid", 9).graph
        disconnecting = None
        for combo in itertools.combinations(range(9), 3):
            try:
                FaultSet(failed_routers=combo).apply(graph)
            except FaultedTopologyError as error:
                if "disconnects the topology" in str(error):
                    disconnecting = combo
                    break
        assert disconnecting is not None
        exit_code = main(
            ["faults", "--kinds", "grid", "--chiplets", "9",
             "--fail-routers", ",".join(str(r) for r in disconnecting), *FAST]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "disconnects the topology" in err
        assert "unreachable" in err
