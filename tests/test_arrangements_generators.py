"""Unit tests for the grid, brickwall, honeycomb and HexaMesh generators."""

import pytest

from repro.arrangements.base import ArrangementKind, Regularity
from repro.arrangements.brickwall import generate_brickwall, irregular_brickwall_cells
from repro.arrangements.grid import generate_grid, irregular_grid_cells
from repro.arrangements.hexamesh import generate_hexamesh, irregular_hexamesh_cells
from repro.arrangements.honeycomb import generate_honeycomb
from repro.graphs.analytical import diameter_formula
from repro.graphs.metrics import degree_statistics, is_connected


class TestGridGenerator:
    def test_regular_grid(self):
        arrangement = generate_grid(16, "regular")
        assert arrangement.kind is ArrangementKind.GRID
        assert arrangement.regularity is Regularity.REGULAR
        assert arrangement.num_chiplets == 16
        assert arrangement.graph.num_edges == 24

    def test_regular_requires_square_count(self):
        with pytest.raises(ValueError):
            generate_grid(10, "regular")

    def test_semi_regular_grid(self):
        arrangement = generate_grid(12, "semi-regular")
        assert arrangement.regularity is Regularity.SEMI_REGULAR
        assert arrangement.metadata["rows"] * arrangement.metadata["cols"] == 12

    def test_semi_regular_rejects_primes(self):
        with pytest.raises(ValueError):
            generate_grid(13, "semi-regular")

    def test_semi_regular_respects_aspect_ratio_limit(self):
        with pytest.raises(ValueError):
            generate_grid(10, "semi-regular", max_aspect_ratio=2.0)
        arrangement = generate_grid(10, "semi-regular", max_aspect_ratio=3.0)
        assert arrangement.metadata["rows"] == 2

    def test_irregular_grid_any_count(self):
        for count in (5, 11, 23, 97):
            arrangement = generate_grid(count, "irregular")
            assert arrangement.num_chiplets == count
            assert is_connected(arrangement.graph)

    def test_auto_classification(self):
        assert generate_grid(49).regularity is Regularity.REGULAR
        assert generate_grid(12).regularity is Regularity.SEMI_REGULAR
        assert generate_grid(13).regularity is Regularity.IRREGULAR

    def test_irregular_cells_extend_regular_core(self):
        cells = irregular_grid_cells(11)
        assert len(cells) == 11
        assert set(irregular_grid_cells(9)) <= set(cells)

    def test_neighbor_counts_match_paper(self):
        stats = degree_statistics(generate_grid(25, "regular").graph)
        assert stats.minimum == 2
        assert stats.maximum == 4

    def test_degenerate_single_chiplet(self):
        arrangement = generate_grid(1)
        assert arrangement.num_chiplets == 1
        assert arrangement.graph.num_edges == 0

    def test_chiplet_dimensions_respected(self):
        arrangement = generate_grid(4, chiplet_width=2.5, chiplet_height=1.5)
        chiplet = arrangement.placement[0]
        assert chiplet.rect.width == pytest.approx(2.5)
        assert chiplet.rect.height == pytest.approx(1.5)

    def test_diameter_matches_formula_for_all_squares(self):
        for side in range(2, 11):
            arrangement = generate_grid(side * side, "regular")
            assert arrangement.diameter() == diameter_formula("grid", side * side)


class TestBrickwallGenerator:
    def test_regular_brickwall_neighbor_counts(self):
        stats = degree_statistics(generate_brickwall(25, "regular").graph)
        assert stats.minimum == 2
        assert stats.maximum == 6

    def test_diameter_matches_formula_for_all_squares(self):
        for side in range(2, 11):
            arrangement = generate_brickwall(side * side, "regular")
            assert arrangement.diameter() == diameter_formula("brickwall", side * side)

    def test_irregular_any_count_connected(self):
        for count in (3, 10, 31, 77):
            arrangement = generate_brickwall(count, "irregular")
            assert arrangement.num_chiplets == count
            assert is_connected(arrangement.graph)

    def test_irregular_cells_extend_regular_core(self):
        cells = irregular_brickwall_cells(20)
        assert len(cells) == 20
        assert set(irregular_brickwall_cells(16)) <= set(cells)

    def test_average_degree_exceeds_grid(self):
        grid = degree_statistics(generate_grid(64, "regular").graph).average
        brickwall = degree_statistics(generate_brickwall(64, "regular").graph).average
        assert brickwall > grid

    def test_semi_regular(self):
        arrangement = generate_brickwall(18, "semi-regular")
        assert arrangement.regularity is Regularity.SEMI_REGULAR
        assert arrangement.num_chiplets == 18


class TestHexameshGenerator:
    def test_regular_counts_only(self):
        with pytest.raises(ValueError):
            generate_hexamesh(10, "regular")

    def test_no_semi_regular_variant(self):
        with pytest.raises(ValueError):
            generate_hexamesh(12, "semi-regular")

    def test_regular_neighbor_counts_match_paper(self):
        for count in (7, 19, 37, 61, 91):
            stats = degree_statistics(generate_hexamesh(count, "regular").graph)
            assert stats.minimum == 3, f"N={count}"
            assert stats.maximum == 6

    def test_diameter_matches_formula(self):
        for count in (7, 19, 37, 61, 91):
            arrangement = generate_hexamesh(count, "regular")
            assert arrangement.diameter() == diameter_formula("hexamesh", count)

    def test_irregular_minimum_degree_is_at_least_two(self):
        for count in range(8, 92):
            arrangement = generate_hexamesh(count)
            stats = degree_statistics(arrangement.graph)
            assert stats.minimum >= 2, f"N={count}"

    def test_irregular_any_count_connected(self):
        for count in (2, 8, 20, 50, 99):
            arrangement = generate_hexamesh(count, "irregular")
            assert arrangement.num_chiplets == count
            assert is_connected(arrangement.graph)

    def test_irregular_cells_extend_regular_core(self):
        cells = irregular_hexamesh_cells(40)
        assert len(cells) == 40
        assert set(irregular_hexamesh_cells(37)) <= set(cells)

    def test_auto_classification(self):
        assert generate_hexamesh(37).regularity is Regularity.REGULAR
        assert generate_hexamesh(38).regularity is Regularity.IRREGULAR

    def test_metadata_records_rings(self):
        assert generate_hexamesh(37, "regular").metadata["rings"] == 3
        irregular = generate_hexamesh(40)
        assert irregular.metadata["complete_rings"] == 3
        assert irregular.metadata["partial_ring_chiplets"] == 3

    def test_placement_has_no_overlaps(self):
        assert not generate_hexamesh(61).placement.has_overlaps()


class TestHoneycombGenerator:
    def test_graph_identical_to_brickwall(self):
        honeycomb = generate_honeycomb(25)
        brickwall = generate_brickwall(25)
        assert sorted(honeycomb.graph.edges()) == sorted(brickwall.graph.edges())

    def test_violates_constraints_flag(self):
        assert generate_honeycomb(9).violates_shape_constraints
        assert not generate_brickwall(9).violates_shape_constraints

    def test_has_no_rectangular_placement(self):
        assert generate_honeycomb(9).placement is None

    def test_hexagon_geometry_in_metadata(self):
        arrangement = generate_honeycomb(9, chiplet_area=4.0)
        assert arrangement.metadata["hexagon_side"] > 0
        assert len(arrangement.metadata["hexagon_centers"]) == 9

    def test_neighbor_counts_match_paper(self):
        stats = degree_statistics(generate_honeycomb(25, "regular").graph)
        assert stats.minimum == 2
        assert stats.maximum == 6
