"""Functional tests of the cycle-accurate simulator."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator
from repro.noc.stats import LatencyStatistics, ThroughputStatistics
from repro.noc.sweep import (
    measure_saturation_throughput,
    measure_zero_load_latency,
    run_injection_sweep,
)
from repro.perfmodel.latency import zero_load_latency_cycles


def _config(**overrides):
    defaults = dict(warmup_cycles=200, measurement_cycles=500, drain_cycles=1200)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestStatisticsContainers:
    def test_latency_statistics_from_samples(self):
        stats = LatencyStatistics.from_samples([10, 20, 30, 40, 50])
        assert stats.count == 5
        assert stats.mean == pytest.approx(30.0)
        assert stats.median == pytest.approx(30.0)
        assert stats.minimum == 10
        assert stats.maximum == 50

    def test_empty_latency_statistics(self):
        stats = LatencyStatistics.from_samples([])
        assert stats.is_empty
        assert stats.count == 0

    def test_throughput_statistics_ratios(self):
        stats = ThroughputStatistics(
            offered_flit_rate=0.2,
            accepted_flit_rate=0.19,
            injected_flits=100,
            ejected_flits=95,
            measurement_cycles=500,
            num_endpoints=10,
        )
        assert stats.acceptance_ratio == pytest.approx(0.95)
        assert stats.is_stable

    def test_zero_offered_rate_is_stable(self):
        stats = ThroughputStatistics(0.0, 0.0, 0, 0, 100, 4)
        assert stats.acceptance_ratio == 1.0


class TestZeroLoadLatency:
    @pytest.mark.parametrize("kind,count", [("grid", 9), ("hexamesh", 7)])
    def test_simulated_latency_matches_analytical_model(self, kind, count):
        graph = make_arrangement(kind, count).graph
        config = _config(measurement_cycles=1500)
        result = NocSimulator(graph, config, injection_rate=0.03).run()
        expected = zero_load_latency_cycles(graph, config)
        assert result.packet_latency.mean == pytest.approx(expected, rel=0.06)

    def test_two_chiplet_design(self):
        graph = ChipGraph(edges=[(0, 1)])
        config = _config(measurement_cycles=3000)
        result = NocSimulator(graph, config, injection_rate=0.05).run()
        # Endpoint pairs: same chiplet (5 cycles) and adjacent chiplet (35);
        # with only four endpoints the sample mix is noisy, hence the loose
        # tolerance.
        expected = zero_load_latency_cycles(graph, config)
        assert result.packet_latency.mean == pytest.approx(expected, rel=0.15)

    def test_hexamesh_has_lower_latency_than_grid(self):
        config = _config()
        grid = NocSimulator(
            make_arrangement("grid", 16).graph, config, injection_rate=0.02
        ).run()
        hexamesh = NocSimulator(
            make_arrangement("hexamesh", 19).graph, config, injection_rate=0.02
        ).run()
        # 19 HexaMesh chiplets vs 16 grid chiplets: still lower latency.
        assert hexamesh.packet_latency.mean < grid.packet_latency.mean

    def test_network_latency_excludes_source_queueing(self):
        graph = make_arrangement("grid", 4).graph
        result = NocSimulator(graph, _config(), injection_rate=0.05).run()
        assert result.network_latency.mean <= result.packet_latency.mean


class TestLatencyLoadBehaviour:
    def test_latency_increases_with_load(self):
        graph = make_arrangement("grid", 9).graph
        config = _config()
        low = NocSimulator(graph, config, injection_rate=0.05).run()
        high = NocSimulator(graph, config, injection_rate=0.3).run()
        assert high.packet_latency.mean > low.packet_latency.mean

    def test_accepted_tracks_offered_below_saturation(self):
        graph = make_arrangement("hexamesh", 7).graph
        result = NocSimulator(graph, _config(), injection_rate=0.1).run()
        assert result.throughput.acceptance_ratio == pytest.approx(1.0, abs=0.08)

    def test_accepted_saturates_above_capacity(self):
        graph = make_arrangement("grid", 9).graph
        result = NocSimulator(graph, _config(drain_cycles=0), injection_rate=1.0).run()
        assert result.accepted_flit_rate < 0.9


class TestSimulatorConfigurationEffects:
    def test_single_virtual_channel_still_works(self):
        graph = make_arrangement("grid", 9).graph
        config = _config(num_virtual_channels=1)
        result = NocSimulator(graph, config, injection_rate=0.02).run()
        assert result.measured_delivery_ratio == pytest.approx(1.0, abs=0.01)

    def test_multi_flit_packets(self):
        graph = make_arrangement("grid", 4).graph
        config = _config(packet_size_flits=4)
        result = NocSimulator(graph, config, injection_rate=0.05).run()
        assert result.measured_delivery_ratio == pytest.approx(1.0, abs=0.02)
        # Serialisation adds (size - 1) cycles to the zero-load latency.
        expected = zero_load_latency_cycles(graph, config)
        assert result.packet_latency.mean == pytest.approx(expected, rel=0.1)

    def test_link_latency_dominates_zero_load_latency(self):
        graph = make_arrangement("grid", 9).graph
        short = NocSimulator(
            graph, _config(link_latency_cycles=1), injection_rate=0.02
        ).run()
        long = NocSimulator(
            graph, _config(link_latency_cycles=27), injection_rate=0.02
        ).run()
        assert long.packet_latency.mean > short.packet_latency.mean + 20

    def test_different_traffic_patterns_run(self):
        graph = make_arrangement("grid", 9).graph
        for pattern in ("uniform", "neighbor", "tornado", "bitcomplement"):
            result = NocSimulator(
                graph, _config(), injection_rate=0.05, traffic=pattern
            ).run()
            assert result.measured_packets_ejected > 0

    def test_deterministic_given_seed(self):
        graph = make_arrangement("hexamesh", 7).graph
        config = _config(seed=7)
        first = NocSimulator(graph, config, injection_rate=0.1).run()
        second = NocSimulator(graph, config, injection_rate=0.1).run()
        assert first.packet_latency.mean == second.packet_latency.mean
        assert first.throughput.ejected_flits == second.throughput.ejected_flits

    def test_invalid_injection_rate_rejected(self):
        graph = make_arrangement("grid", 4).graph
        with pytest.raises(ValueError):
            NocSimulator(graph, _config(), injection_rate=1.5)


class TestStagedPipeline:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="router_pipeline"):
            _config(router_pipeline="superscalar")

    def test_staged_flag_and_default(self):
        assert not _config().is_staged_pipeline
        assert _config(router_pipeline="staged").is_staged_pipeline

    def test_staged_pipeline_has_emergent_per_hop_depth(self):
        # The explicit pipeline's depth *emerges* from its stages: RC in
        # the arrival cycle, VA one cycle later, SA another cycle later —
        # a head departs two cycles after arrival regardless of
        # ``router_latency_cycles``.  Pin that from both sides: it beats
        # the default single-stage model (3-cycle eligibility delay) and
        # loses to an aggressive 1-cycle single-stage router.
        graph = make_arrangement("grid", 9).graph
        staged = NocSimulator(
            graph, _config(router_pipeline="staged"), injection_rate=0.02
        ).run()
        assert staged.measured_delivery_ratio == pytest.approx(1.0, abs=0.02)
        single_default = NocSimulator(graph, _config(), injection_rate=0.02).run()
        assert staged.packet_latency.mean < single_default.packet_latency.mean - 1.0
        single_fast = NocSimulator(
            graph, _config(router_latency_cycles=1), injection_rate=0.02
        ).run()
        assert staged.packet_latency.mean > single_fast.packet_latency.mean + 1.0

    def test_staged_pipeline_is_deterministic(self):
        graph = make_arrangement("hexamesh", 7).graph
        config = _config(seed=7, router_pipeline="staged")
        first = NocSimulator(graph, config, injection_rate=0.1).run()
        second = NocSimulator(graph, config, injection_rate=0.1).run()
        assert first == second


class TestSweepHelpers:
    def test_zero_load_helper(self):
        graph = make_arrangement("grid", 4).graph
        result = measure_zero_load_latency(graph, _config())
        assert result.packet_latency.mean > 0

    def test_injection_sweep_monotone_offered_rates(self):
        graph = make_arrangement("grid", 4).graph
        sweep = run_injection_sweep(graph, _config(), rates=(0.05, 0.2, 0.6))
        assert len(sweep.results) == 3
        assert sweep.saturation_throughput >= sweep.accepted_rates[0]
        assert len(sweep.stable_points()) >= 1

    def test_saturation_overload_method(self):
        graph = make_arrangement("hexamesh", 7).graph
        saturation, evidence = measure_saturation_throughput(
            graph, _config(drain_cycles=0), method="overload"
        )
        assert 0.1 < saturation <= 1.0
        assert evidence.injection_rate == pytest.approx(1.0)

    def test_saturation_sweep_method(self):
        graph = make_arrangement("grid", 4).graph
        saturation, sweep = measure_saturation_throughput(
            graph, _config(drain_cycles=0), method="sweep", rates=(0.1, 0.4, 0.9)
        )
        assert saturation == pytest.approx(max(sweep.accepted_rates))

    def test_unknown_method_rejected(self):
        graph = make_arrangement("grid", 4).graph
        with pytest.raises(ValueError):
            measure_saturation_throughput(graph, _config(), method="magic")
