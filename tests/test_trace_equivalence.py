"""Cross-engine telemetry equality: traces and metric series.

The canonical flit-lifecycle event stream and the per-cycle metric
series are *bit-identical artifacts* across every simulation mode under
a fixed seed — a far sharper correctness check than comparing final
latency histograms, because a single mis-ordered grant or a one-cycle
drift anywhere in a run shows up as a differing event tuple.  Every mode
in ``FAST_SIM_MODES`` (including the batched path) is compared against
the legacy dense loop, across load regimes that exercise the scalar and
vectorized kernel paths, multi-flit packets and early-exit padding.
"""

from __future__ import annotations

import pytest

from repro.noc.config import SimulationConfig
from repro.telemetry import (
    TRACE_KINDS,
    FlitTracer,
    MetricsCollector,
    SERIES_NAMES,
    TelemetrySession,
)

from sim_modes import simulate_noc


def _observed(graph, config, mode, **kwargs):
    """Run one observed point; return ``(session, result)``."""
    session = TelemetrySession(metrics=MetricsCollector(), tracer=FlitTracer())
    _, result = simulate_noc(graph, config, mode=mode, telemetry=session, **kwargs)
    return session, result


def _assert_equal_observation(reference, observed):
    ref_session, ref_result = reference
    session, result = observed
    assert session.tracer.canonical_events() == ref_session.tracer.canonical_events()
    assert session.metrics.series() == ref_session.metrics.series()
    assert result == ref_result


class TestTraceEquivalence:
    def test_moderate_load(self, small_hexamesh, fast_sim_config, fast_sim_mode):
        reference = _observed(small_hexamesh.graph, fast_sim_config, "legacy")
        observed = _observed(small_hexamesh.graph, fast_sim_config, fast_sim_mode)
        _assert_equal_observation(reference, observed)

    def test_overload(self, small_hexamesh, fast_sim_config, fast_sim_mode):
        # Saturation drives the kernel onto its vectorized VA/SA paths
        # (batch sizes above the scalar cutoffs) and fills the ejection
        # backlog, so the deferred eject events matter here.
        reference = _observed(
            small_hexamesh.graph, fast_sim_config, "legacy", injection_rate=0.6
        )
        observed = _observed(
            small_hexamesh.graph, fast_sim_config, fast_sim_mode, injection_rate=0.6
        )
        _assert_equal_observation(reference, observed)

    def test_multi_flit_packets(self, small_hexamesh, fast_sim_mode):
        # Multi-flit packets leave the kernel's fused fast-inject path,
        # so the endpoint probe seam records the inject events instead.
        config = SimulationConfig(
            warmup_cycles=100,
            measurement_cycles=300,
            drain_cycles=800,
            packet_size_flits=4,
        )
        reference = _observed(
            small_hexamesh.graph, config, "legacy", injection_rate=0.1
        )
        observed = _observed(
            small_hexamesh.graph, config, fast_sim_mode, injection_rate=0.1
        )
        _assert_equal_observation(reference, observed)

    def test_near_idle_early_exit_padding(
        self, medium_hexamesh, fast_sim_config, fast_sim_mode
    ):
        # At near-idle load the engines exit the drain phase early; the
        # collectors must pad their series to the configured horizon
        # identically for the per-cycle comparison to hold.
        reference = _observed(
            medium_hexamesh.graph, fast_sim_config, "legacy", injection_rate=0.01
        )
        observed = _observed(
            medium_hexamesh.graph, fast_sim_config, fast_sim_mode, injection_rate=0.01
        )
        _assert_equal_observation(reference, observed)
        session, _ = observed
        total = (
            fast_sim_config.warmup_cycles
            + fast_sim_config.measurement_cycles
            + fast_sim_config.drain_cycles
        )
        assert session.metrics.total_cycles == total
        assert session.metrics.cycles_recorded == total

    def test_staged_pipeline(self, small_hexamesh, fast_sim_config, fast_sim_mode):
        # The explicit RC/VA/SA pipeline changes every grant timestamp,
        # so its event streams must still agree bit-for-bit across modes
        # (each compared against the staged legacy reference).
        from dataclasses import replace

        config = replace(fast_sim_config, router_pipeline="staged")
        reference = _observed(small_hexamesh.graph, config, "legacy")
        observed = _observed(small_hexamesh.graph, config, fast_sim_mode)
        _assert_equal_observation(reference, observed)

    def test_observation_does_not_change_results(
        self, small_hexamesh, fast_sim_config, sim_mode
    ):
        _, plain = simulate_noc(small_hexamesh.graph, fast_sim_config, mode=sim_mode)
        _, observed = _observed(small_hexamesh.graph, fast_sim_config, sim_mode)
        assert observed == plain


class TestTraceLifecycleInvariants:
    @pytest.fixture()
    def session(self, small_hexamesh, fast_sim_config, sim_mode):
        session, _ = _observed(small_hexamesh.graph, fast_sim_config, sim_mode)
        return session

    def test_every_flit_lifecycle_is_well_formed(self, session):
        inject = TRACE_KINDS.index("inject")
        eject = TRACE_KINDS.index("eject")
        by_flit: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for cycle, packet, flit, kind, _node, _port, _vc in session.tracer.events:
            by_flit.setdefault((packet, flit), []).append((cycle, kind))
        assert by_flit, "the run recorded no events"
        for (packet, flit), steps in by_flit.items():
            kinds = [kind for _, kind in sorted(steps)]
            assert kinds[0] == inject, (packet, flit)
            assert kinds.count(inject) == 1
            assert kinds.count(eject) <= 1
            if eject in kinds:
                assert kinds[-1] == eject, (packet, flit)

    def test_metrics_flow_conservation(self, session):
        metrics = session.metrics
        # Every series covers the same horizon.
        lengths = {name: len(series) for name, series in metrics.series().items()}
        assert len(set(lengths.values())) == 1, lengths
        assert set(metrics.series()) == set(SERIES_NAMES)
        # In-flight is the running sum of injections minus ejections and
        # can never go negative; a fully drained run ends at zero.
        assert min(metrics.in_flight) >= 0
        assert metrics.in_flight[-1] == 0
        assert metrics.buffer_occupancy[-1] == 0
