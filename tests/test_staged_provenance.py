"""Provenance accuracy under the staged-pipeline engine fallback.

The ``vectorized`` engine implements the single-stage router pipeline
only; under ``router_pipeline="staged"`` it transparently runs the
bit-identical ``active`` engine instead.  These tests pin the
provenance contract around that fallback: store entries and manifests
record the engine that *actually* ran (so ``hexamesh store verify`` can
replay them bit-for-bit), :attr:`NocSimulator.last_engine` exposes the
resolved engine, and the fallback warns exactly once per process.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.parallel import BatchedSweepRunner, ParallelSweepRunner
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator, _reset_staged_fallback_warning
from repro.store import ResultStore
from repro.store.verify import verify_entry

# Every staged-vectorized run below may trigger the (one-shot, process
# wide) fallback warning; the warning-behaviour test re-arms and asserts
# it explicitly via pytest.warns, which overrides this filter.
pytestmark = pytest.mark.filterwarnings(
    "ignore:engine 'vectorized' implements:RuntimeWarning"
)

STAGED_CONFIG = SimulationConfig(
    warmup_cycles=40,
    measurement_cycles=80,
    drain_cycles=160,
    router_pipeline="staged",
)

SINGLE_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=160
)


def _entries(store_dir):
    store = ResultStore(str(store_dir))
    return [store.get(key) for key in store.keys()]


class TestResolveEngine:
    def test_staged_vectorized_resolves_to_active(self):
        assert NocSimulator.resolve_engine("vectorized", STAGED_CONFIG) == "active"

    def test_single_stage_vectorized_is_unchanged(self):
        assert NocSimulator.resolve_engine("vectorized", SINGLE_CONFIG) == "vectorized"

    def test_last_engine_reports_the_fallback(self):
        grid = ParallelSweepRunner.grid(["grid"], [7], [0.05])
        simulator = NocSimulator(
            grid[0].build_graph(), STAGED_CONFIG, injection_rate=0.05
        )
        simulator.run(engine="vectorized")
        assert simulator.last_engine == "active"

    def test_last_engine_reports_the_request_without_fallback(self):
        grid = ParallelSweepRunner.grid(["grid"], [7], [0.05])
        simulator = NocSimulator(
            grid[0].build_graph(), SINGLE_CONFIG, injection_rate=0.05
        )
        simulator.run(engine="vectorized")
        assert simulator.last_engine == "vectorized"

    def test_fallback_warns_exactly_once_per_process(self):
        _reset_staged_fallback_warning()
        with pytest.warns(RuntimeWarning, match="running the bit-identical 'active'"):
            NocSimulator.resolve_engine("vectorized", STAGED_CONFIG)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (
                NocSimulator.resolve_engine("vectorized", STAGED_CONFIG) == "active"
            )


class TestStagedManifestsTellTheTruth:
    def test_staged_sweep_entry_records_active_and_replays(self, tmp_path):
        _reset_staged_fallback_warning()
        runner = ParallelSweepRunner(
            STAGED_CONFIG, jobs=1, cache_dir=tmp_path, engine="vectorized"
        )
        candidates = ParallelSweepRunner.grid(["grid"], [7], [0.05])
        with pytest.warns(RuntimeWarning):
            records = runner.run(candidates)
        assert not records[0].from_cache
        (entry,) = _entries(tmp_path)
        # The requested engine never ran; the manifest must say so.
        assert entry.manifest["engine"] == "active"
        # ...and precisely because it does, verify replays bit-for-bit.
        outcome = verify_entry(entry)
        assert outcome.ok, outcome

    def test_batched_staged_entries_record_active_and_replay(self, tmp_path):
        _reset_staged_fallback_warning()
        runner = BatchedSweepRunner(
            STAGED_CONFIG, jobs=1, cache_dir=tmp_path, engine="vectorized"
        )
        candidates = ParallelSweepRunner.grid(["grid"], [7], [0.05, 0.3])
        with pytest.warns(RuntimeWarning):
            records = runner.run(candidates)
        entries = _entries(tmp_path)
        assert len(entries) == 2
        for entry in entries:
            assert entry.manifest["engine"] == "active"
            outcome = verify_entry(entry)
            assert outcome.ok, outcome
        # Batched staged-fallback results stay bit-identical to the
        # engine that actually ran them.
        golden = BatchedSweepRunner(STAGED_CONFIG, jobs=1, engine="active").run(
            candidates
        )
        assert [record.result for record in records] == [
            record.result for record in golden
        ]

    def test_single_stage_manifest_still_records_the_request(self, tmp_path):
        runner = ParallelSweepRunner(
            SINGLE_CONFIG, jobs=1, cache_dir=tmp_path, engine="vectorized"
        )
        runner.run(ParallelSweepRunner.grid(["grid"], [7], [0.05]))
        (entry,) = _entries(tmp_path)
        assert entry.manifest["engine"] == "vectorized"
