"""Unit tests of the workload subsystem: task graphs, generators, mappers."""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.io import load_workload_json, save_workload_json, workload_from_dict, workload_to_dict
from repro.workloads import (
    TaskGraph,
    available_mappers,
    available_workloads,
    evaluate_mapping,
    link_loads,
    make_workload,
    map_workload,
    min_tasks_for,
)
from repro.workloads.mapping import WorkloadMapping


class TestTaskGraph:
    def test_basic_construction(self):
        graph = TaskGraph("demo")
        graph.add_task(0, name="a", compute_weight=2.0)
        graph.add_task(1)
        graph.add_edge(0, 1, 5)
        assert graph.num_tasks == 2
        assert graph.num_edges == 1
        assert graph.task(0).compute_weight == 2.0
        assert graph.task(1).name == "task1"
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph.total_traffic_flits == 5
        assert graph.successors(0) == [1]
        assert graph.predecessors(1) == [0]

    def test_rejects_invalid_tasks_and_edges(self):
        graph = TaskGraph()
        graph.add_task(0)
        graph.add_task(1)
        with pytest.raises(ValueError):
            graph.add_task(0)  # duplicate
        with pytest.raises(ValueError):
            graph.add_task(2, compute_weight=0.0)
        with pytest.raises(ValueError):
            graph.add_task(-1)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)  # self loop
        with pytest.raises(ValueError):
            graph.add_edge(0, 7)  # unknown task
        graph.add_edge(0, 1)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1)  # duplicate directed edge
        with pytest.raises(ValueError):
            graph.add_edge(1, 0, traffic_flits=0)
        graph.add_edge(1, 0, 3)  # opposite direction is a different edge

    def test_topological_order_and_cycles(self):
        chain = make_workload("dnn-pipeline", num_tasks=5)
        assert chain.is_dag
        assert chain.topological_order() == [0, 1, 2, 3, 4]

        ring = make_workload("all-reduce", num_tasks=4)
        assert not ring.is_dag
        with pytest.raises(ValueError):
            ring.topological_order()

    def test_critical_path(self):
        pipeline = make_workload("dnn-pipeline", num_tasks=4, compute_weight=3.0)
        assert pipeline.critical_path_weight() == pytest.approx(12.0)
        fork = make_workload("fork-join", num_tasks=10, compute_weight=2.0)
        # source -> worker -> sink, regardless of the worker count.
        assert fork.critical_path_weight() == pytest.approx(6.0)
        ring = make_workload("all-reduce", num_tasks=6, compute_weight=5.0)
        # Cyclic: one bulk-synchronous superstep == heaviest task.
        assert ring.critical_path_weight() == pytest.approx(5.0)

    def test_comm_graph_merges_directions(self):
        stencil = make_workload("stencil", num_tasks=9)
        comm = stencil.to_comm_graph()
        # 3x3 grid: 12 undirected halo pairs from 24 directed edges.
        assert stencil.num_edges == 24
        assert comm.num_edges == 12
        weights = stencil.comm_weights()
        assert all(weight == 2 * 2 for weight in weights.values())

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            TaskGraph().validate()
        lonely = TaskGraph()
        lonely.add_task(0)
        with pytest.raises(ValueError):
            lonely.validate()


class TestGenerators:
    @pytest.mark.parametrize("kind", available_workloads())
    def test_generators_produce_valid_graphs(self, kind):
        workload = make_workload(kind, num_tasks=12)
        workload.validate()
        assert workload.num_tasks == 12
        assert workload.total_traffic_flits > 0
        assert sorted(workload.task_ids()) == list(range(12))

    @pytest.mark.parametrize("kind", available_workloads())
    def test_generators_are_deterministic(self, kind):
        first = make_workload(kind, num_tasks=9)
        second = make_workload(kind, num_tasks=9)
        assert [t for t in first.tasks()] == [t for t in second.tasks()]
        assert first.edges() == second.edges()

    def test_minimum_sizes_enforced(self):
        for kind in available_workloads():
            minimum = min_tasks_for(kind)
            make_workload(kind, num_tasks=minimum).validate()
            with pytest.raises(ValueError):
                make_workload(kind, num_tasks=minimum - 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            make_workload("matmul")
        with pytest.raises(ValueError, match="unknown workload kind"):
            min_tasks_for("matmul")

    def test_client_server_is_a_hotspot(self):
        workload = make_workload("client-server", num_tasks=8,
                                 request_flits=2, response_flits=6)
        server_traffic = sum(e.traffic_flits for e in workload.out_edges(0))
        server_traffic += sum(e.traffic_flits for e in workload.in_edges(0))
        assert server_traffic == workload.total_traffic_flits

    def test_fork_join_shape(self):
        workload = make_workload("fork-join", num_tasks=6)
        assert len(workload.out_edges(0)) == 4  # scatter to every worker
        assert len(workload.in_edges(5)) == 4  # gather from every worker


class TestMappers:
    @pytest.fixture(scope="class")
    def graph(self):
        return make_arrangement("hexamesh", 19).graph

    @pytest.mark.parametrize("mapper", available_mappers())
    @pytest.mark.parametrize("kind", available_workloads())
    def test_every_task_is_mapped(self, mapper, kind, graph):
        workload = make_workload(kind, num_tasks=19)
        mapping = map_workload(mapper, workload, graph)
        assert mapping.num_tasks == workload.num_tasks
        assert set(mapping.as_dict()) == set(workload.task_ids())
        for chiplet in mapping.as_dict().values():
            assert 0 <= chiplet < 19

    @pytest.mark.parametrize("mapper", available_mappers())
    def test_mappers_are_deterministic(self, mapper, graph):
        workload = make_workload("stencil", num_tasks=19)
        first = map_workload(mapper, workload, graph)
        second = map_workload(mapper, workload, graph)
        assert first == second

    @pytest.mark.parametrize("mapper", ("partition", "greedy"))
    def test_balanced_when_tasks_equal_chiplets(self, mapper, graph):
        """One task per chiplet when counts match (a perfect embedding)."""
        workload = make_workload("all-reduce", num_tasks=19)
        mapping = map_workload(mapper, workload, graph)
        assert len(mapping.used_chiplets()) == 19

    def test_round_robin_distribution(self, graph):
        workload = make_workload("dnn-pipeline", num_tasks=40)
        mapping = map_workload("round-robin", workload, graph)
        sizes = [len(mapping.tasks_on(c)) for c in range(19)]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_beats_round_robin_on_pipeline(self, graph):
        """The structure-aware mapper must beat the oblivious baseline."""
        workload = make_workload("dnn-pipeline", num_tasks=19)
        partition_cost = evaluate_mapping(
            workload, map_workload("partition", workload, graph), graph
        )
        round_robin_cost = evaluate_mapping(
            workload, map_workload("round-robin", workload, graph), graph
        )
        assert partition_cost.weighted_hop_count <= round_robin_cost.weighted_hop_count

    def test_unknown_mapper_rejected(self, graph):
        workload = make_workload("dnn-pipeline", num_tasks=4)
        with pytest.raises(ValueError, match="unknown mapper"):
            map_workload("simulated-annealing", workload, graph)

    def test_mapping_validation(self):
        with pytest.raises(ValueError):
            WorkloadMapping({}, num_chiplets=4)
        with pytest.raises(ValueError):
            WorkloadMapping({0: 9}, num_chiplets=4)


class TestMappingCost:
    def test_colocated_tasks_are_local(self):
        graph = make_arrangement("grid", 4).graph
        workload = make_workload("dnn-pipeline", num_tasks=4, traffic_flits=3)
        mapping = WorkloadMapping({0: 0, 1: 0, 2: 0, 3: 0}, num_chiplets=4)
        cost = evaluate_mapping(workload, mapping, graph)
        assert cost.weighted_hop_count == 0.0
        assert cost.max_link_load == 0.0
        assert cost.bottleneck_link is None
        assert cost.local_traffic_fraction == 1.0
        assert link_loads(workload, mapping, graph) == {}

    def test_single_hop_costs(self):
        graph = make_arrangement("grid", 4).graph
        workload = make_workload("dnn-pipeline", num_tasks=2, traffic_flits=7)
        mapping = WorkloadMapping({0: 0, 1: 1}, num_chiplets=4)
        cost = evaluate_mapping(workload, mapping, graph)
        assert cost.weighted_hop_count == pytest.approx(7.0)
        assert cost.max_link_load == pytest.approx(7.0)
        assert cost.bottleneck_link == (0, 1)
        assert cost.local_traffic_fraction == 0.0

    def test_link_loads_conserve_traffic(self):
        graph = make_arrangement("hexamesh", 7).graph
        workload = make_workload("fork-join", num_tasks=7)
        mapping = map_workload("round-robin", workload, graph)
        cost = evaluate_mapping(workload, mapping, graph)
        loads = link_loads(workload, mapping, graph)
        # Total link traffic equals the weighted hop count (each hop of a
        # routed edge contributes its flits to exactly one link).
        assert sum(loads.values()) == pytest.approx(cost.weighted_hop_count)


class TestWorkloadJson:
    def test_round_trip_dict(self):
        workload = make_workload("fork-join", num_tasks=6, compute_weight=2.5)
        clone = workload_from_dict(workload_to_dict(workload))
        assert clone.name == workload.name
        assert clone.tasks() == workload.tasks()
        assert clone.edges() == workload.edges()

    def test_round_trip_file(self, tmp_path):
        workload = make_workload("stencil", num_tasks=10)
        path = tmp_path / "stencil.json"
        save_workload_json(workload, str(path))
        clone = load_workload_json(str(path))
        assert clone.tasks() == workload.tasks()
        assert clone.edges() == workload.edges()

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            workload_from_dict({"name": "empty", "tasks": [], "edges": []})
