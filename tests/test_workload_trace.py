"""Trace-driven traffic: determinism, engine equivalence and sweep integration."""

from __future__ import annotations

import math
import random

import pytest

from repro.arrangements.factory import make_arrangement
from repro.core.explorer import DesignSpaceExplorer
from repro.core.parallel import ParallelSweepRunner, SweepCandidate, resolve_workload_candidate
from repro.noc.config import SimulationConfig
from repro.noc.traffic import BernoulliInjection, UniformRandomTraffic
from repro.workloads import (
    TraceTraffic,
    build_endpoint_demands,
    make_workload,
    map_workload,
    simulate_workload,
    task_endpoints,
    trace_traffic_for,
)

FAST_CONFIG = SimulationConfig(
    warmup_cycles=100, measurement_cycles=200, drain_cycles=400
)


def _mapped(kind="dnn-pipeline", arrangement="hexamesh", count=7, mapper="partition"):
    graph = make_arrangement(arrangement, count).graph
    workload = make_workload(kind, num_tasks=count)
    mapping = map_workload(mapper, workload, graph)
    return graph, workload, mapping


class TestTraceTraffic:
    def test_rejects_degenerate_demands(self):
        with pytest.raises(ValueError):
            TraceTraffic(4, {})
        with pytest.raises(ValueError):
            TraceTraffic(4, {(0, 0): 1})
        with pytest.raises(ValueError):
            TraceTraffic(4, {(0, 9): 1})
        with pytest.raises(ValueError):
            TraceTraffic(4, {(0, 1): 0})
        with pytest.raises(ValueError):
            TraceTraffic(4, {(0, 1): 1.5})

    def test_schedule_proportions_and_interleaving(self):
        traffic = TraceTraffic(4, {(0, 1): 3, (0, 2): 1})
        schedule = traffic.schedule_of(0)
        assert len(schedule) == 4
        assert schedule.count(1) == 3
        assert schedule.count(2) == 1
        # Smooth interleave: the light destination is not pushed to the end.
        assert schedule[0] == 1

    def test_destinations_ignore_rng(self):
        first = TraceTraffic(6, {(0, 1): 2, (0, 5): 1, (3, 2): 4})
        second = TraceTraffic(6, {(0, 1): 2, (0, 5): 1, (3, 2): 4})
        rng_a, rng_b = random.Random(1), random.Random(999)
        sequence_a = [first.destination(0, rng_a) for _ in range(12)]
        sequence_b = [second.destination(0, rng_b) for _ in range(12)]
        assert sequence_a == sequence_b

    def test_silent_sources_are_scaled_to_zero(self):
        traffic = TraceTraffic(4, {(0, 1): 2})
        assert traffic.injection_rate_scale(0) == 1.0
        assert traffic.injection_rate_scale(2) == 0.0
        assert traffic.active_sources() == [0]
        with pytest.raises(RuntimeError):
            traffic.destination(2, random.Random(0))

    def test_rate_scales_follow_traffic_shares(self):
        traffic = TraceTraffic(4, {(0, 1): 4, (1, 0): 2, (2, 3): 1})
        assert traffic.injection_rate_scale(0) == pytest.approx(1.0)
        assert traffic.injection_rate_scale(1) == pytest.approx(0.5)
        assert traffic.injection_rate_scale(2) == pytest.approx(0.25)

    def test_schedule_slot_cap(self):
        demands = {(0, destination): 50 for destination in range(1, 9)}
        traffic = TraceTraffic(9, demands, max_schedule_slots=16)
        schedule = traffic.schedule_of(0)
        assert len(schedule) <= 16
        assert set(schedule) == set(range(1, 9))  # nobody starved

    def test_reset_rewinds_cursors(self):
        traffic = TraceTraffic(4, {(0, 1): 1, (0, 2): 1})
        rng = random.Random(0)
        first = [traffic.destination(0, rng) for _ in range(3)]
        traffic.reset()
        second = [traffic.destination(0, rng) for _ in range(3)]
        assert first == second


class TestEndpointLowering:
    def test_tasks_spread_over_chiplet_endpoints(self):
        graph, workload, mapping = _mapped(count=7)
        endpoints = task_endpoints(workload, mapping, endpoints_per_chiplet=2)
        for task_id, endpoint in endpoints.items():
            chiplet = mapping.chiplet_of(task_id)
            assert endpoint // 2 == chiplet
        # Two tasks on one chiplet land on distinct endpoints.
        by_chiplet: dict[int, set[int]] = {}
        for task_id, endpoint in endpoints.items():
            by_chiplet.setdefault(mapping.chiplet_of(task_id), set()).add(endpoint)
        for chiplet, used in by_chiplet.items():
            expected = min(2, len(mapping.tasks_on(chiplet)))
            assert len(used) == expected

    def test_demands_drop_co_endpoint_edges(self):
        graph = make_arrangement("grid", 4).graph
        workload = make_workload("dnn-pipeline", num_tasks=4, traffic_flits=5)
        from repro.workloads.mapping import WorkloadMapping

        # All four tasks on chiplet 0 with two endpoints: tasks 0,2 share
        # endpoint 0 and tasks 1,3 share endpoint 1.
        mapping = WorkloadMapping({0: 0, 1: 0, 2: 0, 3: 0}, num_chiplets=4)
        demands = build_endpoint_demands(workload, mapping, endpoints_per_chiplet=2)
        assert demands == {(0, 1): 10, (1, 0): 5}


class TestInjectionScaling:
    def test_scaled_injection_process(self):
        injection = BernoulliInjection(0.4, 2)
        half = injection.scaled(0.5)
        assert half.flit_rate == pytest.approx(0.2)
        assert injection.scaled(1.0) is injection
        silent = injection.scaled(0.0)
        assert not silent.should_inject(random.Random(0))
        with pytest.raises(ValueError):
            injection.scaled(1.5)

    def test_synthetic_patterns_keep_unit_scale(self):
        pattern = UniformRandomTraffic(8)
        assert all(pattern.injection_rate_scale(source) == 1.0 for source in range(8))


class TestWorkloadSimulation:
    @pytest.mark.parametrize("engine", ("active", "vectorized"))
    @pytest.mark.parametrize("kind", ("dnn-pipeline", "client-server", "stencil"))
    def test_engines_are_bit_identical(self, kind, engine):
        graph, workload, mapping = _mapped(kind=kind)
        fast = simulate_workload(
            graph, workload, mapping, config=FAST_CONFIG, injection_rate=0.2,
            engine=engine,
        )
        legacy = simulate_workload(
            graph, workload, mapping, config=FAST_CONFIG, injection_rate=0.2,
            engine="legacy",
        )
        assert fast.simulation == legacy.simulation
        assert fast.edge_latencies == legacy.edge_latencies
        assert fast.makespan_proxy_cycles == legacy.makespan_proxy_cycles

    def test_application_metrics_are_populated(self):
        graph, workload, mapping = _mapped(count=9, arrangement="grid")
        result = simulate_workload(
            graph, workload, mapping, config=FAST_CONFIG, injection_rate=0.2
        )
        assert result.workload_name == "dnn-pipeline"
        assert result.mapper == "partition"
        assert result.num_tasks == 9
        assert result.simulation.measured_packets_created > 0
        assert result.cost.total_traffic_flits == workload.total_traffic_flits
        assert math.isfinite(result.makespan_proxy_cycles)
        assert result.makespan_proxy_cycles > workload.critical_path_weight()
        assert len(result.edge_latencies) == workload.num_edges
        measured = [e for e in result.edge_latencies if e.measured_packets > 0]
        assert measured, "no edge recorded measured packets"
        for edge in measured:
            assert edge.mean_latency_cycles > 0
        assert result.mean_edge_latency_cycles > 0

    def test_runs_are_deterministic(self):
        graph, workload, mapping = _mapped(kind="all-reduce")
        first = simulate_workload(graph, workload, mapping, config=FAST_CONFIG)
        second = simulate_workload(graph, workload, mapping, config=FAST_CONFIG)
        assert first.simulation == second.simulation
        assert first.edge_latencies == second.edge_latencies

    def test_reused_pattern_instance_stays_deterministic(self):
        """Network construction rewinds trace cursors, so sharing one
        TraceTraffic instance across simulator instances cannot leak
        schedule progress from one run into the next."""
        from repro.noc.simulator import NocSimulator

        graph, workload, mapping = _mapped(count=7)
        traffic = trace_traffic_for(workload, mapping, endpoints_per_chiplet=2)
        first = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.2, traffic=traffic
        ).run(engine="legacy")
        second = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.2, traffic=traffic
        ).run(engine="active")
        third = NocSimulator(
            graph, FAST_CONFIG, injection_rate=0.2, traffic=traffic
        ).run(engine="vectorized")
        assert first == second == third


class TestSweepIntegration:
    GRID = ParallelSweepRunner.workload_grid(
        ["hexamesh", "grid"], [7, 9], ["dnn-pipeline", "all-reduce"],
        ["partition", "round-robin"],
    )

    def test_workload_grid_shape_and_labels(self):
        assert len(self.GRID) == 2 * 2 * 2 * 2
        labels = {candidate.label for candidate in self.GRID}
        assert "hexamesh-7 @0.1 [dnn-pipeline/partition]" in labels
        for candidate in self.GRID:
            params = dict(candidate.workload_params)
            assert params["num_tasks"] >= 2

    def test_workload_grid_rejects_too_small_num_tasks(self):
        """Explicit --tasks below a generator's minimum fails fast."""
        with pytest.raises(ValueError, match="at least 3 tasks"):
            ParallelSweepRunner.workload_grid(
                ["grid"], [4], ["fork-join"], ["round-robin"], num_tasks=2
            )
        # The default (None) still clamps tiny topologies up to the minimum.
        grid = ParallelSweepRunner.workload_grid(
            ["grid"], [2], ["fork-join"], ["round-robin"]
        )
        assert dict(grid[0].workload_params)["num_tasks"] == 3

    def test_workload_fields_require_workload(self):
        with pytest.raises(ValueError):
            SweepCandidate(kind="grid", num_chiplets=4, injection_rate=0.1,
                           mapper="greedy")
        with pytest.raises(ValueError):
            SweepCandidate(kind="grid", num_chiplets=4, injection_rate=0.1,
                           workload_params=(("num_tasks", 4),))

    def test_synthetic_key_dicts_are_unchanged(self):
        """Workload fields must not perturb existing cache keys / seeds."""
        candidate = SweepCandidate(kind="grid", num_chiplets=4, injection_rate=0.1)
        assert set(candidate.key_dict()) == {
            "kind", "num_chiplets", "injection_rate", "traffic", "regularity",
            "graph_edges",
        }
        workload_candidate = SweepCandidate(
            kind="grid", num_chiplets=4, injection_rate=0.1,
            workload="dnn-pipeline",
        )
        assert workload_candidate.key_dict()["mapper"] == "partition"

    def test_jobs_and_engines_agree(self):
        config = SimulationConfig(warmup_cycles=50, measurement_cycles=100,
                                  drain_cycles=200)
        serial = ParallelSweepRunner(config, jobs=1).run(self.GRID)
        parallel = ParallelSweepRunner(config, jobs=2).run(self.GRID)
        assert serial == parallel
        legacy = ParallelSweepRunner(config, jobs=2, engine="legacy").run(self.GRID)
        assert [r.result for r in serial] == [r.result for r in legacy]
        vectorized = ParallelSweepRunner(config, jobs=2, engine="vectorized").run(self.GRID)
        assert [r.result for r in serial] == [r.result for r in vectorized]

    def test_cache_round_trip(self, tmp_path):
        config = SimulationConfig(warmup_cycles=50, measurement_cycles=100,
                                  drain_cycles=200)
        grid = self.GRID[:4]
        first = ParallelSweepRunner(config, cache_dir=tmp_path).run(grid)
        second = ParallelSweepRunner(config, cache_dir=tmp_path).run(grid)
        assert [r.result for r in first] == [r.result for r in second]
        assert all(record.from_cache for record in second)

    def test_resolve_workload_candidate_round_trip(self):
        candidate = self.GRID[0]
        config = SimulationConfig()
        graph, workload, mapping, traffic = resolve_workload_candidate(
            candidate, config
        )
        assert graph.num_nodes == candidate.num_chiplets
        assert workload.name == candidate.workload
        assert mapping.mapper == candidate.effective_mapper
        assert traffic.num_endpoints == (
            candidate.num_chiplets * config.endpoints_per_chiplet
        )
        plain = SweepCandidate(kind="grid", num_chiplets=4, injection_rate=0.1)
        with pytest.raises(ValueError):
            resolve_workload_candidate(plain, config)


class TestExplorerIntegration:
    def test_evaluate_workloads_records_and_ranking(self):
        explorer = DesignSpaceExplorer(kinds=("grid", "hexamesh"))
        records = explorer.evaluate_workloads(
            [7, 9], ["dnn-pipeline"], mappers=("partition", "round-robin")
        )
        assert len(records) == 2 * 2 * 1 * 2
        assert explorer.workload_records == records
        ranked = explorer.rank_workloads("weighted-hops")
        hops = [record.weighted_hop_count for record in ranked]
        assert hops == sorted(hops)
        by_load = explorer.rank_workloads("max-link-load")
        loads = [record.max_link_load for record in by_load]
        assert loads == sorted(loads)

    def test_evaluate_workloads_parallel_matches_serial(self):
        serial = DesignSpaceExplorer(kinds=("grid",)).evaluate_workloads(
            [7, 9, 12], ["stencil", "fork-join"], mappers=("greedy",)
        )
        parallel = DesignSpaceExplorer(kinds=("grid",)).evaluate_workloads(
            [7, 9, 12], ["stencil", "fork-join"], mappers=("greedy",), jobs=2
        )
        assert serial == parallel

    def test_evaluate_workloads_validates_names(self):
        explorer = DesignSpaceExplorer(kinds=("grid",))
        with pytest.raises(ValueError):
            explorer.evaluate_workloads([4], ["not-a-workload"])
        with pytest.raises(ValueError):
            explorer.evaluate_workloads([4], ["stencil"], mappers=("magic",))
