"""The parallel sweep runner: determinism, caching, progress and ordering."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.parallel import (
    BatchedSweepRunner,
    ParallelSweepRunner,
    SweepCandidate,
    SweepRecord,
    default_chunk_size,
    derive_candidate_seed,
    parallel_map,
    simulation_result_from_dict,
    simulation_result_to_dict,
)
from repro.noc.config import SimulationConfig
from repro.store import ResultStore

FAST_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=160
)

GRID = ParallelSweepRunner.grid(
    ["grid", "hexamesh"], [7, 9], [0.05, 0.3], ["uniform"]
)


def _square(item):
    return item * item


class TestParallelMap:
    def test_inline_matches_parallel(self):
        items = list(range(23))
        assert parallel_map(_square, items) == parallel_map(_square, items, jobs=4)

    def test_order_is_preserved(self):
        items = list(range(50))
        assert parallel_map(_square, items, jobs=3, chunk_size=7) == [
            value * value for value in items
        ]

    def test_progress_reports_every_item(self):
        events = []
        parallel_map(_square, range(10), jobs=2, chunk_size=2,
                     progress=lambda done, total, value: events.append((done, total)))
        assert len(events) == 10
        assert events[-1] == (10, 10)
        assert [done for done, _ in events] == sorted(done for done, _ in events)

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], jobs=0)

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 4) == 6
        assert default_chunk_size(3, 8) == 1


class TestSeeding:
    def test_seeds_are_deterministic(self):
        candidate = GRID[0]
        assert derive_candidate_seed(1, candidate) == derive_candidate_seed(1, candidate)

    def test_seeds_depend_on_candidate_and_base(self):
        seeds = {derive_candidate_seed(1, candidate) for candidate in GRID}
        assert len(seeds) == len(GRID)
        assert derive_candidate_seed(1, GRID[0]) != derive_candidate_seed(2, GRID[0])

    def test_seeds_are_positive(self):
        for candidate in GRID:
            assert derive_candidate_seed(1, candidate) > 0


class TestSweepRunner:
    def test_jobs_1_equals_jobs_4(self):
        serial = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(GRID)
        parallel = ParallelSweepRunner(FAST_CONFIG, jobs=4).run(GRID)
        assert serial == parallel

    def test_records_preserve_candidate_order(self):
        records = ParallelSweepRunner(FAST_CONFIG, jobs=2).run(GRID)
        assert [record.candidate for record in records] == GRID

    def test_cache_round_trip(self, tmp_path):
        cache = tmp_path / "sweep-cache"
        first = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache).run(GRID)
        assert not any(record.from_cache for record in first)
        second = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache).run(GRID)
        assert all(record.from_cache for record in second)
        for fresh, cached in zip(first, second):
            assert fresh.result == cached.result
            assert fresh.seed == cached.seed

    def test_cache_keys_differ_per_config(self, tmp_path):
        runner = ParallelSweepRunner(FAST_CONFIG, cache_dir=tmp_path)
        other_config = SimulationConfig(
            warmup_cycles=40, measurement_cycles=80, drain_cycles=160, seed=7
        )
        candidate = GRID[0]
        assert runner.cache_key(candidate, FAST_CONFIG) != runner.cache_key(
            candidate, other_config
        )

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path)
        records = runner.run(GRID[:1])
        (key,) = runner.store.keys()
        with open(runner.store.entry_path(key), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        again = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path).run(GRID[:1])
        assert not again[0].from_cache
        assert again[0].result == records[0].result

    def test_progress_callback_sees_every_record(self):
        events = []
        ParallelSweepRunner(FAST_CONFIG, jobs=2).run(
            GRID,
            progress=lambda done, total, record: events.append((done, total, record)),
        )
        assert len(events) == len(GRID)
        assert events[-1][0] == len(GRID)
        assert all(isinstance(record, SweepRecord) for _, _, record in events)

    def test_fixed_seed_mode(self):
        runner = ParallelSweepRunner(FAST_CONFIG, derive_seeds=False)
        records = runner.run(GRID[:2])
        assert {record.seed for record in records} == {FAST_CONFIG.seed}

    def test_custom_graph_candidates(self):
        edges = ((0, 1), (1, 2), (2, 3), (3, 0))
        candidate = SweepCandidate(
            kind="custom",
            num_chiplets=4,
            injection_rate=0.1,
            graph_edges=edges,
        )
        (record,) = ParallelSweepRunner(FAST_CONFIG).run([candidate])
        assert record.result.num_routers == 4
        assert record.result.measured_packets_created > 0

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            SweepCandidate(kind="grid", num_chiplets=0, injection_rate=0.1)
        with pytest.raises(ValueError):
            SweepCandidate(kind="grid", num_chiplets=4, injection_rate=1.5)


class TestBatchKeys:
    def test_batch_key_ignores_only_the_injection_rate(self):
        low = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.05)
        high = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.8)
        other_kind = SweepCandidate(kind="hexamesh", num_chiplets=9, injection_rate=0.05)
        other_traffic = SweepCandidate(
            kind="grid", num_chiplets=9, injection_rate=0.05, traffic="tornado"
        )
        assert low.batch_key() == high.batch_key()
        assert low.batch_key() != other_kind.batch_key()
        assert low.batch_key() != other_traffic.batch_key()

    def test_fault_fields_separate_batches(self):
        healthy = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.1)
        faulted = SweepCandidate(
            kind="grid", num_chiplets=9, injection_rate=0.1, failed_links=((0, 1),)
        )
        assert healthy.batch_key() != faulted.batch_key()

    def test_seeds_stay_per_point(self):
        """Batching shares builds, never seeds: rate stays in the seed key."""
        low = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.05)
        high = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.8)
        assert derive_candidate_seed(1, low) != derive_candidate_seed(1, high)


class TestBatchedSweepRunner:
    def test_records_identical_to_per_point_runner(self):
        reference = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(GRID)
        batched = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(GRID)
        assert batched == reference

    def test_parallel_batches_match_serial(self):
        serial = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(GRID)
        parallel = BatchedSweepRunner(FAST_CONFIG, jobs=4).run(GRID)
        assert parallel == serial

    def test_cache_entries_interchange_with_per_point_runner(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = BatchedSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache).run(GRID)
        assert all(not record.from_cache for record in first)
        second = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache).run(GRID)
        assert all(record.from_cache for record in second)
        assert [r.result for r in second] == [r.result for r in first]

    def test_progress_reports_every_candidate(self):
        seen = []
        BatchedSweepRunner(FAST_CONFIG, jobs=1).run(
            GRID, progress=lambda done, total, record: seen.append((done, total))
        )
        assert seen[-1] == (len(GRID), len(GRID))
        assert len(seen) == len(GRID)

    def test_workload_grid_matches_per_point_runner(self):
        grid = ParallelSweepRunner.workload_grid(
            ("hexamesh",), (7,), ("dnn-pipeline",), ("partition",),
            injection_rates=(0.05, 0.2),
        )
        reference = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(grid)
        batched = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(grid)
        assert batched == reference

    def test_faulted_candidates_match_per_point_runner(self):
        candidates = [
            SweepCandidate(
                kind="grid", num_chiplets=9, injection_rate=rate,
                failed_links=((0, 1),),
            )
            for rate in (0.05, 0.3)
        ]
        reference = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(candidates)
        batched = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(candidates)
        assert batched == reference

    def test_derive_seeds_false_matches_per_point_runner(self):
        reference = ParallelSweepRunner(FAST_CONFIG, derive_seeds=False).run(GRID)
        batched = BatchedSweepRunner(FAST_CONFIG, derive_seeds=False).run(GRID)
        assert batched == reference
        assert {record.seed for record in batched} == {FAST_CONFIG.seed}


#: A single-rate grid: every candidate is its own batch group (distinct
#: arrangement structure, one injection rate each), the shape of the
#: resilience sweeps that used to pay batch-grouping overhead for nothing.
SINGLETON_GRID = ParallelSweepRunner.grid(
    ["grid", "hexamesh"], [7, 9], [0.1], ["uniform"]
)


class TestSingletonBatchFallThrough:
    """Size-1 batch groups take the per-point dispatch path.

    This is the no-slowdown regression guard for single-rate sweeps: when
    every group is a singleton the batched runner must execute *exactly*
    the :class:`ParallelSweepRunner` dispatch (same worker function, same
    work items), so its cost over the per-point runner is only the
    trivial grouping pass — there is no batch-path setup left to pay.
    """

    def test_singleton_groups_use_per_point_dispatch(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def no_batches(*_args, **_kwargs):  # pragma: no cover - guard
            raise AssertionError(
                "singleton batch groups must fall through to the "
                "per-point dispatch path"
            )

        monkeypatch.setattr(parallel_module, "_evaluate_batch_item", no_batches)
        reference = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(SINGLETON_GRID)
        batched = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(SINGLETON_GRID)
        assert batched == reference

    def test_multi_point_groups_still_use_batches(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def no_per_point(*_args, **_kwargs):  # pragma: no cover - guard
            raise AssertionError(
                "multi-point batch groups must stay on the batch path"
            )

        monkeypatch.setattr(parallel_module, "_evaluate_work_item", no_per_point)
        records = BatchedSweepRunner(FAST_CONFIG, jobs=1).run(GRID)
        assert [record.candidate for record in records] == GRID

    def test_singleton_fall_through_with_cache(self, tmp_path, monkeypatch):
        """Cache entries stay interchangeable across the fall-through."""
        import repro.core.parallel as parallel_module

        cache = str(tmp_path / "cache")
        first = BatchedSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=cache
        ).run(SINGLETON_GRID)
        monkeypatch.setattr(
            parallel_module, "_evaluate_work_item", None
        )  # cache hits never dispatch
        second = ParallelSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=cache
        ).run(SINGLETON_GRID)
        assert all(record.from_cache for record in second)
        assert [r.result for r in second] == [r.result for r in first]


class TestCacheTmpHygiene:
    """Stale temp files in the store's objects tree get swept on open."""

    def _dead_pid(self):
        import subprocess
        import sys

        probe = subprocess.Popen([sys.executable, "-c", ""])
        probe.wait()
        return probe.pid

    def _plant(self, root, name):
        shard = root / "objects" / "aa"
        shard.mkdir(parents=True, exist_ok=True)
        path = shard / name
        path.write_text("{}")
        return path

    def test_orphans_swept_live_writers_and_bystanders_spared(self, tmp_path):
        ResultStore(str(tmp_path))  # generation 1; the next open is 2
        orphan = self._plant(tmp_path, f"{'a' * 64}.json.tmp.g1.p{self._dead_pid()}")
        live = self._plant(tmp_path, f"{'b' * 64}.json.tmp.g1.p{os.getpid()}")
        bystander = tmp_path / "objects" / "aa" / "notes.txt"
        bystander.write_text("keep me")
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path)
        runner.run(GRID[:1])
        assert not orphan.exists()
        assert live.exists()
        assert bystander.exists()

    def test_pid_reuse_cannot_kill_a_current_generation_writer(self, tmp_path):
        # The regression the generation guard exists for: a temp file of
        # the sweeper's own (or a newer) generation belongs to a live
        # concurrent writer, and must be spared even when its pid probes
        # dead — a recycled pid says nothing about the writer that holds
        # the current generation.
        ResultStore(str(tmp_path))  # generation 1; the next open is 2
        same_gen = self._plant(tmp_path, f"{'c' * 64}.json.tmp.g2.p{self._dead_pid()}")
        newer_gen = self._plant(tmp_path, f"{'d' * 64}.json.tmp.g9.p{self._dead_pid()}")
        store = ResultStore(str(tmp_path))
        assert store.generation == 2
        assert same_gen.exists()
        assert newer_gen.exists()
        assert store.sweep_orphans() == 0

    def test_sweep_only_matches_the_temp_pattern(self, tmp_path):
        # Store entries themselves and non-matching suffixes must survive.
        entry = self._plant(tmp_path, f"{'e' * 64}.json")
        odd = self._plant(tmp_path, f"{'f' * 64}.json.tmp.notapid")
        store = ResultStore(str(tmp_path))
        assert store.sweep_orphans() == 0
        assert entry.exists()
        assert odd.exists()

    def test_failed_store_leaves_no_temp_file(self, tmp_path, monkeypatch):
        import repro.store.store as store_module

        (record,) = ParallelSweepRunner(FAST_CONFIG, jobs=1).run(GRID[:1])
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path)
        assert runner.store is not None  # open before json.dump is broken

        def boom(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.json, "dump", boom)
        with pytest.raises(OSError, match="disk full"):
            runner._cache_store("e" * 64, GRID[0], record.result)
        leftovers = [
            str(path) for path in tmp_path.rglob("*") if ".tmp." in path.name
        ]
        assert leftovers == []


class TestResultSerialization:
    def test_round_trip_preserves_every_field(self):
        (record,) = ParallelSweepRunner(FAST_CONFIG).run(GRID[:1])
        data = json.loads(json.dumps(simulation_result_to_dict(record.result)))
        assert simulation_result_from_dict(data) == record.result

    def test_nan_latencies_survive_round_trip(self):
        # A zero-injection run produces empty (NaN) latency statistics.
        candidate = SweepCandidate(kind="grid", num_chiplets=4, injection_rate=0.0)
        (record,) = ParallelSweepRunner(FAST_CONFIG).run([candidate])
        data = json.loads(json.dumps(simulation_result_to_dict(record.result)))
        rebuilt = simulation_result_from_dict(data)
        assert rebuilt.measured_packets_created == 0
        assert rebuilt.throughput == record.result.throughput
