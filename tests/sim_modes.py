"""The simulation-mode registry shared by the equivalence-style suites.

Not a test module: ``tests/conftest.py`` turns these into fixtures, and
``test_noc_engine.py`` / ``test_noc_invariants.py`` /
``test_golden_traces.py`` / ``test_properties.py`` import the helper and
constants directly (pytest's default ``prepend`` import mode puts
``tests/`` on ``sys.path``, mirroring ``fault_scenarios.py``).  Adding a
new engine (or engine mode, like the batched path) to ``FAST_SIM_MODES``
enrols it in every equivalence, invariant, golden-trace and property grid
at once.
"""

from __future__ import annotations

from repro.noc.simulator import BatchPoint, NocSimulator

#: Every way to run the cycle-accurate simulator that must be
#: *bit-identical* to the legacy dense loop: the optimised engines plus
#: the batched multi-point path (``NocSimulator.run_batch`` with the
#: vectorized batch engine).
FAST_SIM_MODES: tuple[str, ...] = ("active", "vectorized", "batched")

#: The fast modes plus the legacy reference itself (for suites that check
#: self-consistency properties rather than equivalence against legacy).
ALL_SIM_MODES: tuple[str, ...] = ("legacy",) + FAST_SIM_MODES


def simulate_noc(
    graph,
    config,
    *,
    injection_rate=0.2,
    traffic="uniform",
    faults=None,
    mode="legacy",
    telemetry=None,
):
    """Run one simulation point under a mode; return ``(network, result)``.

    ``mode`` is an engine name or ``"batched"``, which evaluates the point
    through :meth:`NocSimulator.run_batch` (vectorized batch engine) and
    captures the network through the ``on_point`` hook — so every suite
    can inspect final network state uniformly across modes.  ``telemetry``
    is an optional :class:`~repro.telemetry.TelemetrySession` observing
    the run (in batched mode it is handed to the single point).
    """
    if mode == "batched":
        captured = {}

        def grab(index, network, result):
            captured["network"] = network

        results = NocSimulator.run_batch(
            graph,
            [BatchPoint(injection_rate)],
            config=config,
            traffic=traffic,
            faults=faults,
            engine="vectorized",
            on_point=grab,
            telemetry=None if telemetry is None else lambda index, point: telemetry,
        )
        return captured["network"], results[0]
    simulator = NocSimulator(
        graph, config, injection_rate=injection_rate, traffic=traffic, faults=faults
    )
    result = simulator.run(engine=mode, telemetry=telemetry)
    return simulator.network, result
