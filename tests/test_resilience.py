"""The resilience subsystem: samplers, sweep candidates, degradation curves."""

from __future__ import annotations

import math

import pytest

from repro.arrangements.factory import make_arrangement
from repro.core.explorer import DesignSpaceExplorer
from repro.core.parallel import (
    ParallelSweepRunner,
    SweepCandidate,
    derive_candidate_seed,
)
from repro.noc.config import SimulationConfig
from repro.noc.faults import FaultedTopologyError, FaultSet
from repro.resilience import (
    FaultProbabilities,
    derive_fault_seed,
    fault_probabilities_from_yield,
    resilience_grid,
    run_resilience_sweep,
    sample_fault_set,
    sample_survivable_faults,
)
from repro.resilience.sweep import split_failure_count, summarize_records
from repro.workloads import make_workload, map_workload, simulate_workload

FAST_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=160
)


class TestYieldCoupling:
    def test_probabilities_are_fractions(self):
        probs = fault_probabilities_from_yield(50.0)
        assert 0.0 <= probs.link_failure_probability <= 1.0
        assert 0.0 <= probs.router_failure_probability <= 1.0

    def test_larger_chiplets_fail_more_often(self):
        small = fault_probabilities_from_yield(10.0)
        large = fault_probabilities_from_yield(400.0)
        assert large.router_failure_probability > small.router_failure_probability

    def test_perfect_test_coverage_means_no_router_failures(self):
        probs = fault_probabilities_from_yield(100.0, test_coverage=1.0)
        assert probs.router_failure_probability == 0.0

    def test_link_probability_tracks_bond_yield(self):
        probs = fault_probabilities_from_yield(50.0, per_bond_yield=0.9)
        assert probs.link_failure_probability == pytest.approx(0.1)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultProbabilities(link_failure_probability=1.5, router_failure_probability=0.0)

    def test_expected_faults(self, small_grid):
        probs = FaultProbabilities(
            link_failure_probability=0.5, router_failure_probability=0.5
        )
        graph = small_grid.graph
        expected = probs.expected_faults(graph)
        assert expected == pytest.approx(0.5 * (graph.num_edges + graph.num_nodes))


class TestFaultSeeds:
    def test_deterministic(self):
        assert derive_fault_seed(1, "a", 2) == derive_fault_seed(1, "a", 2)

    def test_identity_sensitive(self):
        assert derive_fault_seed(1, "a", 2) != derive_fault_seed(1, "a", 3)
        assert derive_fault_seed(1, "a", 2) != derive_fault_seed(2, "a", 2)

    def test_strictly_positive(self):
        for index in range(50):
            assert derive_fault_seed(0, index) > 0


class TestSamplers:
    def test_exact_counts(self, medium_hexamesh):
        faults = sample_survivable_faults(
            medium_hexamesh.graph, num_link_faults=3, num_router_faults=2, seed=11
        )
        assert len(faults.failed_links) == 3
        assert len(faults.failed_routers) == 2
        # Survivable by construction.
        faults.apply(medium_hexamesh.graph)

    def test_deterministic_per_seed(self, medium_hexamesh):
        first = sample_survivable_faults(medium_hexamesh.graph, num_link_faults=2, seed=4)
        second = sample_survivable_faults(medium_hexamesh.graph, num_link_faults=2, seed=4)
        other = sample_survivable_faults(medium_hexamesh.graph, num_link_faults=2, seed=5)
        assert first == second
        assert first != other  # overwhelmingly likely on 42 edges

    def test_zero_faults_short_circuit(self, small_grid):
        assert sample_survivable_faults(small_grid.graph, seed=1).is_empty

    def test_too_many_faults_rejected(self, small_grid):
        graph = small_grid.graph
        with pytest.raises(ValueError, match="only"):
            sample_survivable_faults(graph, num_link_faults=graph.num_edges + 1)

    def test_unabsorbable_faults_raise(self, path_graph):
        with pytest.raises(FaultedTopologyError, match="cannot absorb"):
            sample_survivable_faults(path_graph, num_link_faults=1, max_attempts=5)

    def test_yield_sampling_is_deterministic_and_survivable(self, medium_hexamesh):
        probs = FaultProbabilities(
            link_failure_probability=0.05, router_failure_probability=0.05
        )
        first = sample_fault_set(medium_hexamesh.graph, probs, seed=9)
        second = sample_fault_set(medium_hexamesh.graph, probs, seed=9)
        assert first == second
        first.apply(medium_hexamesh.graph)

    def test_yield_sampling_zero_probabilities_is_healthy(self, small_grid):
        probs = FaultProbabilities(
            link_failure_probability=0.0, router_failure_probability=0.0
        )
        assert sample_fault_set(small_grid.graph, probs, seed=1).is_empty


class TestSweepCandidateFaults:
    def test_healthy_key_dict_is_unchanged(self):
        candidate = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.1)
        assert sorted(candidate.key_dict()) == [
            "graph_edges", "injection_rate", "kind", "num_chiplets",
            "regularity", "traffic",
        ]
        assert candidate.fault_set.is_empty

    def test_fault_fields_join_identity_when_present(self):
        candidate = SweepCandidate(
            kind="grid", num_chiplets=9, injection_rate=0.1,
            failed_links=((1, 0),), failed_routers=(4,),
        )
        key = candidate.key_dict()
        assert key["failed_links"] == [[0, 1]]
        assert key["failed_routers"] == [4]
        healthy = SweepCandidate(kind="grid", num_chiplets=9, injection_rate=0.1)
        assert derive_candidate_seed(1, candidate) != derive_candidate_seed(1, healthy)

    def test_fault_fields_are_normalised(self):
        candidate = SweepCandidate(
            kind="grid", num_chiplets=9, injection_rate=0.1,
            failed_links=((3, 0), (0, 3)),
        )
        assert candidate.failed_links == ((0, 3),)
        assert "!1L+0R" in candidate.label

    def test_build_graph_applies_faults(self):
        candidate = SweepCandidate(
            kind="hexamesh", num_chiplets=7, injection_rate=0.1, failed_routers=(3,)
        )
        assert candidate.build_graph().num_nodes == 6

    def test_build_graph_fails_fast_with_candidate_context(self):
        candidate = SweepCandidate(
            kind="custom", num_chiplets=4, injection_rate=0.1,
            graph_edges=((0, 1), (1, 2), (2, 3)),
            failed_links=((1, 2),),
        )
        with pytest.raises(FaultedTopologyError, match="candidate .*disconnects"):
            candidate.build_graph()

    def test_malformed_fault_fields_rejected(self):
        with pytest.raises(ValueError, match="distinct routers"):
            SweepCandidate(
                kind="grid", num_chiplets=9, injection_rate=0.1,
                failed_links=((2, 2),),
            )


class TestResilienceGrid:
    def test_split_failure_count(self):
        assert split_failure_count(3, "link") == (3, 0)
        assert split_failure_count(3, "router") == (0, 3)
        assert split_failure_count(3, "mixed") == (2, 1)
        with pytest.raises(ValueError):
            split_failure_count(1, "meteor")

    def test_baseline_emitted_once_regardless_of_samples(self):
        candidates = resilience_grid(
            ("grid",), 9, (0, 1), samples=3, injection_rate=0.1, seed=1
        )
        healthy = [c for c in candidates if c.fault_set.is_empty]
        faulted = [c for c in candidates if not c.fault_set.is_empty]
        assert len(healthy) == 1
        assert len(faulted) == 3

    def test_router_fault_type_fails_routers(self):
        candidates = resilience_grid(
            ("grid",), 9, (2,), samples=1, fault_type="router", seed=1
        )
        (candidate,) = candidates
        assert len(candidate.failed_routers) == 2
        assert not candidate.failed_links

    def test_empty_failure_counts_rejected(self):
        with pytest.raises(ValueError, match="at least one failure count"):
            resilience_grid(("grid",), 9, ())


class TestResilienceSweep:
    def test_summaries_anchor_on_baseline(self):
        result = run_resilience_sweep(
            ("grid", "hexamesh"), 9, (0, 1), samples=1,
            config=FAST_CONFIG, injection_rate=0.2,
        )
        assert result.kinds() == ["grid", "hexamesh"]
        for kind in result.kinds():
            curve = result.curve(kind)
            assert [point.num_failures for point in curve] == [0, 1]
            assert curve[0].latency_vs_baseline == pytest.approx(1.0)
            assert curve[0].throughput_vs_baseline == pytest.approx(1.0)
            assert not math.isnan(curve[1].latency_vs_baseline)
        with pytest.raises(ValueError, match="no resilience summaries"):
            result.curve("brickwall")

    def test_identical_across_engines_and_jobs(self, tmp_path):
        base = run_resilience_sweep(
            ("grid",), 9, (0, 2), samples=2, config=FAST_CONFIG, injection_rate=0.2
        )
        vectorized = run_resilience_sweep(
            ("grid",), 9, (0, 2), samples=2, config=FAST_CONFIG,
            injection_rate=0.2, engine="vectorized",
        )
        assert base.summaries == vectorized.summaries
        cached = run_resilience_sweep(
            ("grid",), 9, (0, 2), samples=2, config=FAST_CONFIG,
            injection_rate=0.2, cache_dir=tmp_path,
        )
        assert cached.summaries == base.summaries

    def test_router_faults_count_lost_endpoints_as_lost_throughput(self):
        # Router faults remove endpoints; below saturation the survivors
        # still accept ~all offered traffic, so a per-endpoint ratio would
        # sit near 1.0 and hide the lost capacity.  The summary compares
        # aggregate throughput, so losing 2 of 9 routers must show up.
        result = run_resilience_sweep(
            ("grid",), 9, (0, 2), samples=1, fault_type="router",
            config=FAST_CONFIG, injection_rate=0.1,
        )
        baseline, faulted = result.curve("grid")
        base_rec = next(r for r in result.records if r.candidate.fault_set.is_empty)
        faulted_rec = next(
            r for r in result.records if not r.candidate.fault_set.is_empty
        )
        expected = (
            faulted_rec.result.accepted_flit_rate * faulted_rec.result.num_endpoints
        ) / (base_rec.result.accepted_flit_rate * base_rec.result.num_endpoints)
        assert faulted.throughput_vs_baseline == pytest.approx(expected)
        # 7 of 9 routers survive: aggregate retention lands near 7/9, and
        # decisively below the ~1.0 a per-endpoint ratio would report.
        assert faulted.throughput_vs_baseline < 0.9

    def test_missing_baseline_yields_nan_ratios(self):
        result = run_resilience_sweep(
            ("grid",), 9, (1,), samples=1, config=FAST_CONFIG, injection_rate=0.2
        )
        (summary,) = result.summaries
        assert math.isnan(summary.latency_vs_baseline)
        assert math.isnan(summary.throughput_vs_baseline)

    def test_summarize_records_groups_by_actual_fault_count(self):
        candidates = resilience_grid(("grid",), 9, (0, 1, 2), samples=2, seed=1)
        runner = ParallelSweepRunner(FAST_CONFIG)
        records = runner.run(candidates)
        summaries = summarize_records(records, fault_type="link")
        assert [s.num_failures for s in summaries] == [0, 1, 2]
        assert [s.samples for s in summaries] == [1, 2, 2]


class TestExplorerResilience:
    def test_evaluate_and_rank(self):
        explorer = DesignSpaceExplorer(("grid", "hexamesh"))
        summaries = explorer.evaluate_resilience(
            9, (0, 2), samples=1, config=FAST_CONFIG, injection_rate=0.2
        )
        assert len(summaries) == 4  # two kinds x two failure counts
        assert explorer.resilience_records == summaries
        ranked = explorer.rank_resilience()
        assert len(ranked) == 2  # baselines excluded
        assert all(point.num_failures == 2 for point in ranked)
        assert (
            ranked[0].latency_vs_baseline <= ranked[1].latency_vs_baseline
        )
        retention = explorer.rank_resilience("throughput-retention")
        assert (
            retention[0].throughput_vs_baseline
            >= retention[1].throughput_vs_baseline
        )

    def test_unknown_objective_rejected(self):
        explorer = DesignSpaceExplorer(("grid",))
        with pytest.raises(ValueError):
            explorer.rank_resilience("vibes")


class TestFaultedWorkloads:
    def test_workload_is_remapped_onto_degraded_topology(self):
        graph = make_arrangement("hexamesh", 19).graph
        workload = make_workload("dnn-pipeline", num_tasks=19)
        mapping = map_workload("partition", workload, graph)
        faults = sample_survivable_faults(graph, num_router_faults=1, seed=5)
        result = simulate_workload(
            graph, workload, mapping, config=FAST_CONFIG, faults=faults
        )
        assert result.simulation.num_routers == 18
        assert result.simulation.measured_packets_ejected > 0
        # Every re-mapped task landed on a surviving chiplet.
        assert result.cost.weighted_hop_count >= 0.0

    def test_hand_built_mapping_cannot_be_remapped(self):
        from repro.workloads.mapping import WorkloadMapping

        graph = make_arrangement("grid", 9).graph
        workload = make_workload("stencil", num_tasks=9)
        assignment = {task: task % 9 for task in workload.task_ids()}
        custom = WorkloadMapping(assignment, num_chiplets=9)
        faults = sample_survivable_faults(graph, num_link_faults=1, seed=3)
        with pytest.raises(ValueError, match="cannot re-map mapper 'custom'"):
            simulate_workload(
                graph, workload, custom, config=FAST_CONFIG, faults=faults
            )
        # Without faults the custom mapping simulates fine.
        plain = simulate_workload(graph, workload, custom, config=FAST_CONFIG)
        assert plain.simulation.measured_packets_created > 0

    def test_empty_faults_match_plain_run(self):
        graph = make_arrangement("grid", 9).graph
        workload = make_workload("stencil", num_tasks=9)
        mapping = map_workload("partition", workload, graph)
        plain = simulate_workload(graph, workload, mapping, config=FAST_CONFIG)
        faulted = simulate_workload(
            graph, workload, mapping, config=FAST_CONFIG, faults=FaultSet()
        )
        assert plain.simulation == faulted.simulation
