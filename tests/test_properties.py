"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.arrangements.factory import available_regularities, make_arrangement
from repro.core.explorer import DesignSpaceExplorer, ExplorationRecord
from repro.geometry.adjacency import shared_edges
from repro.graphs.analytical import bisection_bandwidth_formula, diameter_formula
from repro.graphs.metrics import (
    average_distance,
    degree_statistics,
    diameter,
    is_connected,
    planar_average_degree_bound,
    radius,
)
from repro.linkmodel.bandwidth import data_wires, link_bandwidth_bps, wire_count
from repro.linkmodel.shape import solve_grid_shape, solve_hex_shape
from repro.noc.config import SimulationConfig
from repro.noc.faults import FaultedTopologyError
from repro.noc.simulator import BatchPoint, NocSimulator
from repro.partition.common import cut_size, is_balanced
from repro.resilience import sample_survivable_faults
from repro.partition.estimator import find_best_bisection
from repro.utils.mathutils import hexamesh_chiplet_count, is_hexamesh_count

from sim_modes import FAST_SIM_MODES, simulate_noc

# Hypothesis strategies shared by several properties.
chiplet_counts = st.integers(min_value=2, max_value=60)
arrangement_kinds = st.sampled_from(["grid", "brickwall", "hexamesh"])
all_arrangement_kinds = st.sampled_from(["grid", "brickwall", "honeycomb", "hexamesh"])
areas = st.floats(min_value=0.5, max_value=900.0, allow_nan=False, allow_infinity=False)
power_fractions = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestArrangementProperties:
    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_arrangements_are_connected_planar_and_sized(self, kind, count):
        arrangement = make_arrangement(kind, count)
        graph = arrangement.graph
        assert graph.num_nodes == count
        assert is_connected(graph)
        # Planarity implies e <= 3v - 6 for v >= 3.
        if count >= 3:
            assert graph.num_edges <= 3 * count - 6
            assert degree_statistics(graph).average <= planar_average_degree_bound(count)

    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_geometric_adjacency_equals_lattice_adjacency(self, kind, count):
        arrangement = make_arrangement(kind, count)
        geometric = {(a, b) for a, b, _ in shared_edges(arrangement.placement)}
        lattice = {tuple(sorted(edge)) for edge in arrangement.graph.edges()}
        assert geometric == lattice

    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_placements_never_overlap(self, kind, count):
        arrangement = make_arrangement(kind, count)
        assert not arrangement.placement.has_overlaps()

    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_every_available_regularity_is_constructible(self, kind, count):
        for regularity in available_regularities(kind, count):
            arrangement = make_arrangement(kind, count, regularity)
            assert arrangement.regularity is regularity
            assert arrangement.num_chiplets == count

    @_SETTINGS
    @given(count=chiplet_counts)
    def test_hexamesh_min_degree_invariant(self, count):
        arrangement = make_arrangement("hexamesh", count)
        stats = degree_statistics(arrangement.graph)
        if count >= 7 and is_hexamesh_count(count):
            assert stats.minimum >= 3
        elif count >= 3:
            assert stats.minimum >= 2

    @_SETTINGS
    @given(count=chiplet_counts)
    def test_hexamesh_diameter_never_worse_than_grid(self, count):
        hexamesh = make_arrangement("hexamesh", count)
        grid = make_arrangement("grid", count)
        assert diameter(hexamesh.graph) <= diameter(grid.graph)


class TestGeneratorProperties:
    """Structural invariants of every catalog arrangement generator."""

    @_SETTINGS
    @given(kind=all_arrangement_kinds, count=chiplet_counts)
    def test_node_count_and_ids(self, kind, count):
        graph = make_arrangement(kind, count).graph
        assert graph.num_nodes == count
        assert sorted(graph.nodes()) == list(range(count))

    @_SETTINGS
    @given(kind=all_arrangement_kinds, count=chiplet_counts)
    def test_connectivity(self, kind, count):
        assert is_connected(make_arrangement(kind, count).graph)

    @_SETTINGS
    @given(kind=all_arrangement_kinds, count=chiplet_counts)
    def test_symmetric_adjacency(self, kind, count):
        graph = make_arrangement(kind, count).graph
        for first, second in graph.edges():
            assert second in graph.neighbors(first)
            assert first in graph.neighbors(second)
            assert first != second


def _pareto_records(metrics: list[tuple[float, float]]) -> list[ExplorationRecord]:
    """Records with prescribed (latency, throughput) values.

    ``pareto_front`` only touches the metric fields, so the design facade
    can stay unset; diameter / bisection are filler.
    """
    return [
        ExplorationRecord(
            design=None,
            zero_load_latency_cycles=latency,
            saturation_throughput_tbps=throughput,
            diameter=1,
            bisection_bandwidth=1.0,
        )
        for latency, throughput in metrics
    ]


def _dominates(other: ExplorationRecord, candidate: ExplorationRecord) -> bool:
    return (
        other.zero_load_latency_cycles <= candidate.zero_load_latency_cycles
        and other.saturation_throughput_tbps >= candidate.saturation_throughput_tbps
        and (
            other.zero_load_latency_cycles < candidate.zero_load_latency_cycles
            or other.saturation_throughput_tbps > candidate.saturation_throughput_tbps
        )
    )


metric_pairs = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=30,
)


class TestParetoFrontProperties:
    @_SETTINGS
    @given(metrics=metric_pairs)
    def test_front_is_subset_of_records(self, metrics):
        explorer = DesignSpaceExplorer(kinds=["grid"])
        explorer._records = _pareto_records(metrics)
        front = explorer.pareto_front()
        assert set(map(id, front)) <= set(map(id, explorer._records))

    @_SETTINGS
    @given(metrics=metric_pairs)
    def test_no_front_member_is_dominated(self, metrics):
        explorer = DesignSpaceExplorer(kinds=["grid"])
        explorer._records = _pareto_records(metrics)
        for member in explorer.pareto_front():
            assert not any(
                _dominates(other, member)
                for other in explorer._records
                if other is not member
            )

    @_SETTINGS
    @given(metrics=metric_pairs)
    def test_every_excluded_record_is_dominated(self, metrics):
        explorer = DesignSpaceExplorer(kinds=["grid"])
        explorer._records = _pareto_records(metrics)
        front_ids = set(map(id, explorer.pareto_front()))
        for record in explorer._records:
            if id(record) not in front_ids:
                assert any(
                    _dominates(other, record)
                    for other in explorer._records
                    if other is not record
                )

    @_SETTINGS
    @given(metrics=metric_pairs)
    def test_front_is_sorted_by_latency(self, metrics):
        explorer = DesignSpaceExplorer(kinds=["grid"])
        explorer._records = _pareto_records(metrics)
        latencies = [r.zero_load_latency_cycles for r in explorer.pareto_front()]
        assert latencies == sorted(latencies)


class TestGraphMetricProperties:
    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_radius_diameter_relation(self, kind, count):
        graph = make_arrangement(kind, count).graph
        graph_diameter = diameter(graph)
        graph_radius = radius(graph)
        assert graph_radius <= graph_diameter <= 2 * graph_radius

    @_SETTINGS
    @given(kind=arrangement_kinds, count=chiplet_counts)
    def test_average_distance_bounded_by_diameter(self, kind, count):
        graph = make_arrangement(kind, count).graph
        if count >= 2:
            assert 1.0 <= average_distance(graph) <= diameter(graph)


class TestFormulaProperties:
    @_SETTINGS
    @given(side=st.integers(min_value=2, max_value=12))
    def test_grid_and_brickwall_formulas_match_construction(self, side):
        count = side * side
        assert diameter(make_arrangement("grid", count, "regular").graph) == diameter_formula(
            "grid", count
        )
        assert diameter(
            make_arrangement("brickwall", count, "regular").graph
        ) == diameter_formula("brickwall", count)

    @_SETTINGS
    @given(rings=st.integers(min_value=1, max_value=7))
    def test_hexamesh_formulas_match_construction(self, rings):
        count = hexamesh_chiplet_count(rings)
        arrangement = make_arrangement("hexamesh", count, "regular")
        assert diameter(arrangement.graph) == diameter_formula("hexamesh", count)
        assert diameter_formula("hexamesh", count) == 2 * rings


class TestPartitionProperties:
    @_SETTINGS
    @given(kind=arrangement_kinds, count=st.integers(min_value=4, max_value=40))
    def test_best_bisection_is_balanced_and_consistent(self, kind, count):
        graph = make_arrangement(kind, count).graph
        result = find_best_bisection(graph, num_seeds=2)
        part = set(result.part)
        assert is_balanced(graph, part)
        assert cut_size(graph, part) == result.cut_edges
        assert result.cut_edges >= 1

    @_SETTINGS
    @given(side=st.sampled_from([2, 4, 6]))
    def test_estimator_never_beats_the_true_optimum_on_even_grids(self, side):
        count = side * side
        graph = make_arrangement("grid", count, "regular").graph
        result = find_best_bisection(graph, num_seeds=2)
        # The balanced minimum cut of an even k x k grid is exactly k.
        assert result.cut_edges >= side
        assert result.cut_edges == bisection_bandwidth_formula("grid", count)


class TestLinkModelProperties:
    @_SETTINGS
    @given(area=areas, fraction=power_fractions)
    def test_hex_shape_solution_satisfies_equations(self, area, fraction):
        shape = solve_hex_shape(area, fraction)
        band_height = shape.width_mm / 2.0
        power_width = shape.width_mm - 2.0 * shape.bump_distance_mm
        assert shape.width_mm * shape.height_mm == pytest.approx(area, rel=1e-9)
        assert shape.height_mm == pytest.approx(
            2 * shape.bump_distance_mm + band_height, rel=1e-9
        )
        assert power_width * band_height == pytest.approx(area * fraction, rel=1e-9)
        assert shape.link_sector_area_mm2 * 6 + shape.power_area_mm2 == pytest.approx(
            area, rel=1e-9
        )

    @_SETTINGS
    @given(area=areas, fraction=power_fractions)
    def test_grid_shape_is_square_and_consistent(self, area, fraction):
        shape = solve_grid_shape(area, fraction)
        assert math.isclose(shape.width_mm, shape.height_mm)
        assert math.isclose(
            shape.link_sector_area_mm2 * 4 + shape.power_area_mm2, area, rel_tol=1e-9
        )
        assert shape.bump_distance_mm >= 0.0

    @_SETTINGS
    @given(
        area=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        pitch=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        non_data=st.integers(min_value=0, max_value=40),
        frequency=st.floats(min_value=1e9, max_value=64e9, allow_nan=False),
    )
    def test_bandwidth_chain_is_monotone_and_non_negative(
        self, area, pitch, non_data, frequency
    ):
        wires = wire_count(area, pitch)
        payload = data_wires(wires, non_data)
        bandwidth = link_bandwidth_bps(payload, frequency)
        assert wires >= 0
        assert 0 <= payload <= wires
        assert bandwidth >= 0.0
        # More area never reduces the wire count.
        assert wire_count(area * 2, pitch) >= wires


class TestEngineEquivalenceProperties:
    """Every fast simulation mode is bit-identical to legacy on random configs.

    Beyond the fixed equivalence grid of ``test_noc_engine.py``: random
    small arrangements, injection rates, VC counts and seeds, comparing
    the full per-packet latency *histograms* (not just the summary
    statistics) against the legacy reference.  The mode is drawn from the
    shared ``FAST_SIM_MODES`` registry of ``tests/conftest.py``, so a new
    engine joins this property automatically.
    """

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=all_arrangement_kinds,
        count=st.integers(min_value=4, max_value=10),
        rate=st.sampled_from([0.05, 0.2, 0.6]),
        vcs=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        mode=st.sampled_from(FAST_SIM_MODES),
    )
    def test_fast_mode_latency_histograms_equal_legacy(
        self, kind, count, rate, vcs, seed, mode
    ):
        config = SimulationConfig(
            num_virtual_channels=vcs,
            warmup_cycles=30,
            measurement_cycles=60,
            drain_cycles=150,
            seed=seed,
        )
        graph = make_arrangement(kind, count).graph

        def run(sim_mode):
            network, result = simulate_noc(
                graph, config, injection_rate=rate, mode=sim_mode
            )
            histogram = sorted(
                packet.latency
                for endpoint in network.endpoints
                for packet in endpoint.ejected_packets
                if packet.measured
            )
            network.verify_flit_conservation()
            return result, histogram

        legacy_result, legacy_histogram = run("legacy")
        fast_result, fast_histogram = run(mode)
        assert legacy_histogram == fast_histogram
        assert legacy_result.throughput == fast_result.throughput
        assert (
            legacy_result.measured_packets_created
            == fast_result.measured_packets_created
        )


class TestBatchedSweepProperties:
    """Batched multi-point runs equal per-point legacy runs, point by point.

    For random small arrangements, random point lists (random rates *and*
    random per-point seeds) and random VC counts, evaluating the whole
    list through ``NocSimulator.run_batch`` must reproduce every
    individual legacy run exactly — results and per-packet latency
    histograms alike.  This is the property that makes batching a pure
    amortisation: batch composition and order can never leak between
    points.
    """

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=all_arrangement_kinds,
        count=st.integers(min_value=4, max_value=10),
        rates=st.lists(
            st.sampled_from([0.05, 0.1, 0.3, 0.6]), min_size=1, max_size=4
        ),
        vcs=st.sampled_from([2, 4]),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        derive_seeds=st.booleans(),
    )
    def test_batched_points_equal_per_point_legacy(
        self, kind, count, rates, vcs, seed, derive_seeds
    ):
        from dataclasses import replace

        config = SimulationConfig(
            num_virtual_channels=vcs,
            warmup_cycles=30,
            measurement_cycles=60,
            drain_cycles=150,
            seed=seed,
        )
        graph = make_arrangement(kind, count).graph
        points = [
            BatchPoint(rate, seed=seed + index if derive_seeds else None)
            for index, rate in enumerate(rates)
        ]

        def histogram(network):
            return sorted(
                packet.latency
                for endpoint in network.endpoints
                for packet in endpoint.ejected_packets
                if packet.measured
            )

        reference = []
        for point in points:
            point_config = (
                replace(config, seed=point.seed) if point.seed is not None else config
            )
            simulator = NocSimulator(
                graph, point_config, injection_rate=point.injection_rate
            )
            result = simulator.run(engine="legacy")
            simulator.network.verify_flit_conservation()
            reference.append((result, histogram(simulator.network)))

        batched_histograms = {}

        def capture(index, network, result):
            network.verify_flit_conservation()
            batched_histograms[index] = histogram(network)

        batched = NocSimulator.run_batch(
            graph, points, config=config, on_point=capture
        )

        assert len(batched) == len(reference)
        for index, (result, (expected_result, expected_histogram)) in enumerate(
            zip(batched, reference)
        ):
            assert batched_histograms[index] == expected_histogram
            assert result.throughput == expected_result.throughput
            assert (
                result.measured_packets_created
                == expected_result.measured_packets_created
            )
            assert (
                result.measured_packets_ejected
                == expected_result.measured_packets_ejected
            )
            assert result.cycles_simulated == expected_result.cycles_simulated
            if expected_result.packet_latency.count:
                assert result == expected_result


class TestFaultInjectionProperties:
    """Random survivable faults on random configs keep the engine contract.

    For any connected arrangement and any survivable fault draw, the
    vectorized engine must reproduce the legacy per-packet latency
    histogram on the degraded topology, and no packet can ever traverse a
    failed link — structurally guaranteed because the degraded network
    contains no channel for it, which is asserted by mapping every
    surviving router-to-router link back to the original topology.
    """

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=all_arrangement_kinds,
        count=st.integers(min_value=6, max_value=12),
        rate=st.sampled_from([0.1, 0.4]),
        link_faults=st.integers(min_value=0, max_value=2),
        router_faults=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        mode=st.sampled_from(FAST_SIM_MODES),
    )
    def test_fast_modes_match_legacy_under_random_survivable_faults(
        self, kind, count, rate, link_faults, router_faults, seed, mode
    ):
        graph = make_arrangement(kind, count).graph
        try:
            faults = sample_survivable_faults(
                graph,
                num_link_faults=link_faults,
                num_router_faults=router_faults,
                seed=seed,
                max_attempts=30,
            )
        except FaultedTopologyError:
            assume(False)  # this topology cannot absorb the draw
            return
        config = SimulationConfig(
            warmup_cycles=30, measurement_cycles=60, drain_cycles=150, seed=seed
        )

        def run(sim_mode):
            network, result = simulate_noc(
                graph, config, injection_rate=rate, faults=faults, mode=sim_mode
            )
            histogram = sorted(
                packet.latency
                for endpoint in network.endpoints
                for packet in endpoint.ejected_packets
                if packet.measured
            )
            network.verify_flit_conservation()
            return result, histogram

        legacy_result, legacy_histogram = run("legacy")
        fast_result, fast_histogram = run(mode)
        assert legacy_histogram == fast_histogram
        assert legacy_result.throughput == fast_result.throughput
        assert (
            legacy_result.measured_packets_created
            == fast_result.measured_packets_created
        )

        # Packets never traverse a failed link or reach a failed router:
        # the degraded network simply has no such channel.
        if faults.is_empty:
            return
        degraded = faults.apply(graph)
        assert not set(degraded.surviving_routers) & set(faults.failed_routers)
        surviving_links = {
            degraded.original_edge(first, second)
            for first, second in degraded.graph.edges()
        }
        assert not surviving_links & set(faults.failed_links)
        assert all(graph.has_edge(*link) for link in surviving_links)
