"""Unit tests for the simulator's channels, flits and traffic patterns."""

import random

import pytest

from repro.noc.channel import Channel
from repro.noc.config import SimulationConfig
from repro.noc.flit import Packet, build_flits
from repro.noc.traffic import (
    BernoulliInjection,
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    PermutationTraffic,
    TornadoTraffic,
    UniformRandomTraffic,
    make_traffic_pattern,
)


class TestChannel:
    def test_delivery_after_latency(self):
        channel = Channel(latency=3)
        channel.send("a", now=10)
        assert channel.receive(now=12) == []
        assert channel.receive(now=13) == ["a"]
        assert channel.receive(now=14) == []

    def test_in_order_delivery(self):
        channel = Channel(latency=2)
        channel.send("a", now=0)
        channel.send("b", now=1)
        assert channel.receive(now=3) == ["a", "b"]

    def test_zero_latency_rounded_up_to_one(self):
        channel = Channel(latency=0)
        channel.send("x", now=5)
        assert channel.receive(now=5) == []
        assert channel.receive(now=6) == ["x"]

    def test_in_flight_and_peek(self):
        channel = Channel(latency=4)
        assert channel.peek_next_arrival() is None
        channel.send("x", now=1)
        assert channel.in_flight == 1
        assert channel.peek_next_arrival() == 5

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Channel(latency=-1)


class TestPacketAndFlits:
    def _packet(self, size=3):
        return Packet(
            packet_id=1, source=0, destination=5, size_flits=size, creation_cycle=10
        )

    def test_build_flits_marks_head_and_tail(self):
        flits = build_flits(self._packet(3))
        assert [f.is_head for f in flits] == [True, False, False]
        assert [f.is_tail for f in flits] == [False, False, True]
        assert [f.flit_index for f in flits] == [0, 1, 2]

    def test_single_flit_packet_is_head_and_tail(self):
        flit = build_flits(self._packet(1))[0]
        assert flit.is_head and flit.is_tail

    def test_flit_exposes_packet_endpoints(self):
        flit = build_flits(self._packet())[0]
        assert flit.source == 0
        assert flit.destination == 5

    def test_latency_requires_ejection(self):
        packet = self._packet()
        with pytest.raises(ValueError):
            _ = packet.latency
        packet.injection_cycle = 12
        packet.ejection_cycle = 50
        assert packet.latency == 40
        assert packet.network_latency == 38

    def test_zero_flit_packet_rejected(self):
        packet = self._packet(size=1)
        packet.size_flits = 0
        with pytest.raises(ValueError):
            build_flits(packet)


class TestTrafficPatterns:
    def test_uniform_never_targets_self(self):
        pattern = UniformRandomTraffic(10)
        rng = random.Random(0)
        for _ in range(200):
            assert pattern.destination(3, rng) != 3

    def test_uniform_covers_all_destinations(self):
        pattern = UniformRandomTraffic(6)
        rng = random.Random(1)
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert seen == {1, 2, 3, 4, 5}

    def test_uniform_rejects_out_of_range_source(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(4).destination(4, random.Random(0))

    def test_permutation_is_fixed_and_fixed_point_free(self):
        pattern = PermutationTraffic(8, seed=3)
        rng = random.Random(0)
        for source in range(8):
            first = pattern.destination(source, rng)
            second = pattern.destination(source, rng)
            assert first == second
            assert first != source

    def test_hotspot_bias(self):
        pattern = HotspotTraffic(10, hotspots=[9], hotspot_fraction=1.0)
        rng = random.Random(0)
        assert all(pattern.destination(2, rng) == 9 for _ in range(20))

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(4, hotspots=[7])
        with pytest.raises(ValueError):
            HotspotTraffic(4, hotspots=[])

    def test_bit_complement(self):
        pattern = BitComplementTraffic(8)
        rng = random.Random(0)
        assert pattern.destination(0, rng) == 7
        assert pattern.destination(3, rng) == 4

    def test_bit_complement_avoids_fixed_point(self):
        pattern = BitComplementTraffic(7)
        rng = random.Random(0)
        assert pattern.destination(3, rng) != 3

    def test_tornado_and_neighbor(self):
        rng = random.Random(0)
        assert TornadoTraffic(8).destination(1, rng) == 5
        assert NeighborTraffic(8).destination(7, rng) == 0

    def test_factory(self):
        pattern = make_traffic_pattern("uniform", 6)
        assert isinstance(pattern, UniformRandomTraffic)
        with pytest.raises(ValueError):
            make_traffic_pattern("unknown", 6)

    def test_at_least_two_endpoints_required(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(1)


class TestBernoulliInjection:
    def test_rate_zero_never_injects(self):
        injection = BernoulliInjection(0.0)
        rng = random.Random(0)
        assert not any(injection.should_inject(rng) for _ in range(100))

    def test_rate_one_with_single_flit_packets_always_injects(self):
        injection = BernoulliInjection(1.0, packet_size_flits=1)
        rng = random.Random(0)
        assert all(injection.should_inject(rng) for _ in range(100))

    def test_empirical_rate_close_to_configured(self):
        injection = BernoulliInjection(0.3)
        rng = random.Random(42)
        hits = sum(injection.should_inject(rng) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_packet_size_scales_packet_probability(self):
        injection = BernoulliInjection(0.5, packet_size_flits=5)
        rng = random.Random(7)
        hits = sum(injection.should_inject(rng) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.1, abs=0.01)

    def test_rate_above_one_rejected(self):
        with pytest.raises(ValueError):
            BernoulliInjection(1.2)


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = SimulationConfig.paper_defaults()
        assert config.num_virtual_channels == 8
        assert config.buffer_depth_flits == 8
        assert config.link_latency_cycles == 27
        assert config.router_latency_cycles == 3
        assert config.endpoints_per_chiplet == 2

    def test_escape_vc_is_last(self):
        config = SimulationConfig(num_virtual_channels=4)
        assert config.escape_vc == 3
        assert config.adaptive_vcs == (0, 1, 2)

    def test_single_vc_has_no_adaptive_channels(self):
        assert SimulationConfig(num_virtual_channels=1).adaptive_vcs == ()

    def test_per_hop_latency(self):
        assert SimulationConfig().per_hop_latency_cycles == 30

    def test_scaled_phases(self):
        config = SimulationConfig(warmup_cycles=1000, measurement_cycles=2000)
        scaled = config.scaled_phases(0.1)
        assert scaled.warmup_cycles == 100
        assert scaled.measurement_cycles == 200
        with pytest.raises(ValueError):
            config.scaled_phases(0.0)

    def test_fast_functional_preset(self):
        assert SimulationConfig.fast_functional().warmup_cycles < 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_virtual_channels=0)
        with pytest.raises(ValueError):
            SimulationConfig(measurement_cycles=0)
