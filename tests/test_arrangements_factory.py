"""Unit tests for the arrangement factory, catalogue and base types."""

import pytest

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.arrangements.catalog import ArrangementCatalog, enumerate_arrangements
from repro.arrangements.factory import (
    available_regularities,
    classify_regularity,
    make_arrangement,
)
from repro.graphs.model import ChipGraph


class TestArrangementKind:
    def test_from_name_accepts_strings(self):
        assert ArrangementKind.from_name("grid") is ArrangementKind.GRID
        assert ArrangementKind.from_name("HEXAMESH") is ArrangementKind.HEXAMESH

    def test_from_name_accepts_members(self):
        assert ArrangementKind.from_name(ArrangementKind.BRICKWALL) is ArrangementKind.BRICKWALL

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown arrangement kind"):
            ArrangementKind.from_name("torus")

    def test_short_labels_match_paper(self):
        assert ArrangementKind.GRID.short_label == "G"
        assert ArrangementKind.BRICKWALL.short_label == "BW"
        assert ArrangementKind.HONEYCOMB.short_label == "HC"
        assert ArrangementKind.HEXAMESH.short_label == "HM"


class TestRegularity:
    def test_from_name_variants(self):
        assert Regularity.from_name("regular") is Regularity.REGULAR
        assert Regularity.from_name("semi_regular") is Regularity.SEMI_REGULAR
        assert Regularity.from_name("semi-regular") is Regularity.SEMI_REGULAR
        assert Regularity.from_name(Regularity.IRREGULAR) is Regularity.IRREGULAR

    def test_unknown_regularity_rejected(self):
        with pytest.raises(ValueError):
            Regularity.from_name("perfect")


class TestArrangementDataclass:
    def test_validates_chiplet_count_against_graph(self):
        graph = ChipGraph(nodes=range(3), edges=[(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            Arrangement(
                kind=ArrangementKind.GRID,
                regularity=Regularity.IRREGULAR,
                num_chiplets=4,
                graph=graph,
                placement=None,
            )

    def test_label_and_describe(self):
        arrangement = make_arrangement("hexamesh", 7)
        assert arrangement.label == "HM-7 (regular)"
        description = arrangement.describe()
        assert description["num_chiplets"] == 7
        assert description["diameter"] == 2
        assert description["min_neighbors"] == 3

    def test_link_sectors_per_chiplet(self):
        assert make_arrangement("grid", 4).link_sectors_per_chiplet == 4
        assert make_arrangement("brickwall", 4).link_sectors_per_chiplet == 6
        assert make_arrangement("hexamesh", 7).link_sectors_per_chiplet == 6


class TestClassifyRegularity:
    def test_grid_classification(self):
        assert classify_regularity("grid", 36) is Regularity.REGULAR
        assert classify_regularity("grid", 12) is Regularity.SEMI_REGULAR
        assert classify_regularity("grid", 13) is Regularity.IRREGULAR

    def test_hexamesh_classification(self):
        assert classify_regularity("hexamesh", 19) is Regularity.REGULAR
        assert classify_regularity("hexamesh", 20) is Regularity.IRREGULAR

    def test_available_regularities(self):
        assert available_regularities("grid", 36) == [
            Regularity.REGULAR,
            Regularity.IRREGULAR,
        ]
        assert available_regularities("grid", 12) == [
            Regularity.SEMI_REGULAR,
            Regularity.IRREGULAR,
        ]
        assert available_regularities("hexamesh", 19) == [
            Regularity.REGULAR,
            Regularity.IRREGULAR,
        ]
        assert available_regularities("hexamesh", 23) == [Regularity.IRREGULAR]

    def test_aspect_ratio_threshold_affects_semi_regular(self):
        assert classify_regularity("grid", 10) is Regularity.IRREGULAR
        assert classify_regularity("grid", 10, max_aspect_ratio=3.0) is Regularity.SEMI_REGULAR


class TestMakeArrangement:
    @pytest.mark.parametrize("kind", ["grid", "brickwall", "honeycomb", "hexamesh"])
    def test_every_kind_and_count_produces_valid_arrangement(self, kind):
        for count in (1, 2, 7, 12, 37, 50):
            arrangement = make_arrangement(kind, count)
            assert arrangement.num_chiplets == count
            assert arrangement.graph.num_nodes == count

    def test_explicit_regularity_forwarded(self):
        arrangement = make_arrangement("grid", 16, "irregular")
        assert arrangement.regularity is Regularity.IRREGULAR

    def test_chiplet_dimensions_forwarded(self):
        arrangement = make_arrangement("brickwall", 9, chiplet_width=2.0, chiplet_height=3.0)
        assert arrangement.chiplet_width == pytest.approx(2.0)
        assert arrangement.chiplet_height == pytest.approx(3.0)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            make_arrangement("grid", 0)


class TestCatalog:
    def test_enumerate_all_regularities(self):
        entries = enumerate_arrangements(["grid"], [16])
        regs = {entry.regularity for entry in entries}
        assert regs == {Regularity.REGULAR, Regularity.IRREGULAR}

    def test_enumerate_best_only(self):
        entries = enumerate_arrangements(["grid", "hexamesh"], [7, 9], all_regularities=False)
        assert len(entries) == 4

    def test_enumerate_rejects_invalid_count(self):
        with pytest.raises(ValueError):
            enumerate_arrangements(["grid"], [0])

    def test_catalog_caches(self):
        catalog = ArrangementCatalog()
        first = catalog.get("hexamesh", 19)
        second = catalog.get("hexamesh", 19)
        assert first is second
        assert catalog.cached_count == 1

    def test_catalog_best_and_all_for(self):
        catalog = ArrangementCatalog()
        best = catalog.best("grid", 16)
        assert best.regularity is Regularity.REGULAR
        all_variants = list(catalog.all_for("grid", 16))
        assert {a.regularity for a in all_variants} == {
            Regularity.REGULAR,
            Regularity.IRREGULAR,
        }
