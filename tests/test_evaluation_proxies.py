"""Tests for the Figure 4 / Figure 6 experiment runners."""

import pytest

from repro.arrangements.base import ArrangementKind, Regularity
from repro.arrangements.factory import make_arrangement
from repro.evaluation.proxies import (
    evaluate_arrangement_proxies,
    figure4_annotations,
    run_figure6,
    run_figure6_bisection,
    run_figure6_diameter,
)
from repro.graphs.analytical import bisection_bandwidth_formula, diameter_formula


class TestEvaluateArrangementProxies:
    def test_regular_arrangement_uses_formula(self):
        point = evaluate_arrangement_proxies(make_arrangement("hexamesh", 37, "regular"))
        assert point.bisection_source == "formula"
        assert point.bisection_bandwidth == pytest.approx(
            bisection_bandwidth_formula("hexamesh", 37)
        )
        assert point.diameter == diameter_formula("hexamesh", 37)

    def test_irregular_arrangement_uses_estimator(self):
        point = evaluate_arrangement_proxies(make_arrangement("hexamesh", 40))
        assert point.bisection_source == "estimated"
        assert point.bisection_bandwidth > 0

    def test_semi_regular_grid_uses_estimator(self):
        point = evaluate_arrangement_proxies(make_arrangement("grid", 12, "semi-regular"))
        assert point.bisection_source == "estimated"


class TestFigure6:
    @pytest.fixture(scope="class")
    def figure6(self):
        # A reduced range keeps the test fast while covering every regularity
        # class and both bisection sources.
        return run_figure6(range(1, 26))

    def test_every_kind_present(self, figure6):
        kinds = {point.kind for point in figure6.points}
        assert kinds == {
            ArrangementKind.GRID,
            ArrangementKind.BRICKWALL,
            ArrangementKind.HEXAMESH,
        }

    def test_every_count_has_an_irregular_point(self, figure6):
        for count in range(2, 26):
            points = [
                p
                for p in figure6.points
                if p.kind is ArrangementKind.GRID and p.num_chiplets == count
            ]
            assert any(p.regularity is Regularity.IRREGULAR for p in points)

    def test_point_lookup_prefers_most_regular(self, figure6):
        point = figure6.point(ArrangementKind.GRID, 16)
        assert point.regularity is Regularity.REGULAR

    def test_point_lookup_missing_raises(self, figure6):
        with pytest.raises(KeyError):
            figure6.point(ArrangementKind.GRID, 999)

    def test_hexamesh_diameter_below_grid(self, figure6):
        for count in (16, 20, 25):
            grid = figure6.point(ArrangementKind.GRID, count)
            hexamesh = figure6.point(ArrangementKind.HEXAMESH, count)
            assert hexamesh.diameter <= grid.diameter

    def test_hexamesh_bisection_above_grid(self, figure6):
        for count in (16, 20, 25):
            grid = figure6.point(ArrangementKind.GRID, count)
            hexamesh = figure6.point(ArrangementKind.HEXAMESH, count)
            assert hexamesh.bisection_bandwidth >= grid.bisection_bandwidth

    def test_experiment_export(self, figure6):
        diameters = figure6.diameter_experiment()
        bisections = figure6.bisection_experiment()
        assert diameters.experiment_id == "FIG6a"
        assert bisections.experiment_id == "FIG6b"
        assert diameters.series  # non-empty
        assert "grid (regular)" in diameters.series_names()

    def test_convenience_runners(self):
        diameter_result = run_figure6_diameter(range(1, 10))
        bisection_result = run_figure6_bisection(range(1, 10))
        assert diameter_result.experiment_id == "FIG6a"
        assert bisection_result.experiment_id == "FIG6b"


class TestFigure4Annotations:
    def test_annotations_match_formulas(self):
        result = figure4_annotations(range(4, 50))
        for kind in ("grid", "brickwall", "hexamesh"):
            measured = result.get_series(f"{kind}:diameter")
            formula = result.get_series(f"{kind}:diameter_formula")
            assert measured.xs == formula.xs
            assert measured.ys == formula.ys

    def test_neighbor_annotations(self):
        result = figure4_annotations(range(4, 40))
        grid_max = result.get_series("grid:max_neighbors")
        hexamesh_min = result.get_series("hexamesh:min_neighbors")
        # The 2x2 grid has maximum degree 2; from 3x3 on it is 4.
        assert all(value <= 4 for value in grid_max.ys)
        assert all(
            value == 4 for x, value in zip(grid_max.xs, grid_max.ys) if x >= 9
        )
        assert all(value == 3 for value in hexamesh_min.ys)

    def test_honeycomb_matches_brickwall(self):
        result = figure4_annotations(range(4, 30))
        assert (
            result.get_series("honeycomb:diameter").ys
            == result.get_series("brickwall:diameter").ys
        )
