"""Representative fault scenarios shared by the engine and invariant suites.

Not a test module: both ``test_noc_engine.py`` and
``test_noc_invariants.py`` import from here (pytest's default ``prepend``
import mode puts ``tests/`` on ``sys.path``), so the sampled scenarios
stay in one place while each suite picks its own seed.
"""

from __future__ import annotations

from repro.noc.faults import FaultSet
from repro.resilience import (
    FaultProbabilities,
    sample_fault_set,
    sample_survivable_faults,
)

#: Scenario names: a single failed link, a single failed router, and a
#: yield-style Bernoulli draw (probabilities high enough to actually
#: fault the small test topologies).
FAULT_SCENARIOS = ("single-link", "single-router", "yield-sampled")


def representative_faults(graph, scenario: str, *, seed: int) -> FaultSet:
    """Draw the representative fault set of one scenario on ``graph``."""
    if scenario == "single-link":
        return sample_survivable_faults(graph, num_link_faults=1, seed=seed)
    if scenario == "single-router":
        return sample_survivable_faults(graph, num_router_faults=1, seed=seed)
    if scenario != "yield-sampled":
        raise ValueError(f"unknown fault scenario {scenario!r}")
    return sample_fault_set(
        graph,
        FaultProbabilities(
            link_failure_probability=0.1, router_failure_probability=0.1
        ),
        seed=seed,
    )
