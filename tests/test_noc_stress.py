"""Stress and failure-injection tests for the NoC simulator.

These scenarios push the simulator into the regimes where deadlock or
starvation bugs would show up: minimal resources (few VCs, shallow
buffers), adversarial traffic (hotspot, permutation) and sustained
overload.  The invariants checked are forward progress (packets keep being
delivered), flit conservation and the absence of flow-control violations
(which the router and endpoint raise as RuntimeError).
"""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator

pytestmark = pytest.mark.slow


def _config(**overrides):
    defaults = dict(warmup_cycles=100, measurement_cycles=400, drain_cycles=400)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestMinimalResourceConfigurations:
    @pytest.mark.parametrize(
        "num_vcs, min_accepted",
        [
            # A single VC forces everything onto the up*/down* tree, whose
            # root is a severe bottleneck — throughput is low but non-zero.
            (1, 0.005),
            (2, 0.05),
        ],
    )
    def test_few_virtual_channels_make_progress_under_load(self, num_vcs, min_accepted):
        graph = make_arrangement("hexamesh", 19).graph
        config = _config(num_virtual_channels=num_vcs, drain_cycles=0)
        result = NocSimulator(graph, config, injection_rate=0.5).run()
        assert result.throughput.ejected_flits > 0
        assert result.accepted_flit_rate > min_accepted

    def test_shallow_buffers_under_overload(self):
        graph = make_arrangement("brickwall", 16).graph
        config = _config(buffer_depth_flits=2, drain_cycles=0)
        simulator = NocSimulator(graph, config, injection_rate=1.0)
        result = simulator.run()
        simulator.network.verify_flit_conservation()
        assert result.throughput.ejected_flits > 0

    def test_multi_flit_packets_with_shallow_buffers(self):
        graph = make_arrangement("grid", 9).graph
        config = _config(packet_size_flits=4, buffer_depth_flits=2)
        simulator = NocSimulator(graph, config, injection_rate=0.1)
        result = simulator.run()
        simulator.network.verify_flit_conservation()
        assert result.measured_packets_ejected > 0


class TestAdversarialTraffic:
    @pytest.mark.parametrize("pattern", ["hotspot", "permutation", "tornado"])
    def test_patterns_under_heavy_load(self, pattern):
        graph = make_arrangement("hexamesh", 19).graph
        config = _config(drain_cycles=0)
        simulator = NocSimulator(
            graph, config, injection_rate=0.7, traffic=pattern
        )
        result = simulator.run()
        simulator.network.verify_flit_conservation()
        assert result.throughput.ejected_flits > 0

    def test_hotspot_converges_at_low_load(self):
        graph = make_arrangement("grid", 16).graph
        config = _config()
        result = NocSimulator(
            graph, config, injection_rate=0.02, traffic="hotspot"
        ).run()
        assert result.measured_delivery_ratio == pytest.approx(1.0, abs=0.02)


class TestSustainedOverload:
    def test_long_overload_run_keeps_delivering(self):
        """No deadlock: the delivered-flit count keeps growing under overload."""
        graph = make_arrangement("hexamesh", 37).graph
        config = SimulationConfig(
            warmup_cycles=0, measurement_cycles=600, drain_cycles=0
        )
        simulator = NocSimulator(graph, config, injection_rate=1.0)
        network = simulator.network
        # Drive the network manually in two halves and require progress in both.
        halfway = 600
        delivered_checkpoints = []
        for cycle in range(2 * halfway):
            network.deliver_channels(cycle)
            network.step_endpoints(cycle, measured_phase=False)
            network.step_routers(cycle)
            if cycle in (halfway - 1, 2 * halfway - 1):
                delivered_checkpoints.append(network.total_ejected_flits())
        assert delivered_checkpoints[0] > 0
        assert delivered_checkpoints[1] > delivered_checkpoints[0]
        network.verify_flit_conservation()

    def test_escape_patience_zero_still_progresses(self):
        """Even with an always-eager escape channel the network stays live."""
        graph = make_arrangement("grid", 16).graph
        config = _config(escape_patience_cycles=0, drain_cycles=0)
        result = NocSimulator(graph, config, injection_rate=0.8).run()
        assert result.throughput.ejected_flits > 0
