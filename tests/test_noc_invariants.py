"""Flit-conservation invariants across arrangements, traffic and engines.

For every arrangement kind and every registered traffic pattern, and for
every simulation mode (legacy, active-set, vectorized, batched — the grid
is the ``sim_mode`` fixture of ``tests/conftest.py``), the network must
account for every flit it ever created: ``created == ejected + in-flight + source-queued`` at the end of
a run, and the measured-packet bookkeeping of the simulator must agree
with the per-component accessors.
"""

from __future__ import annotations

import pytest

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.noc.traffic import available_traffic_patterns
from repro.workloads import make_workload, map_workload, trace_traffic_for

from sim_modes import simulate_noc
from fault_scenarios import representative_faults

#: One representative chiplet count per arrangement family (small enough
#: to keep the full kind x traffic x engine grid fast).
KIND_SIZES = [("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)]

FAST_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=200
)


def _run(kind: str, count: int, traffic: str, mode: str):
    graph = make_arrangement(kind, count).graph
    return simulate_noc(graph, FAST_CONFIG, injection_rate=0.2, traffic=traffic, mode=mode)


@pytest.mark.parametrize("traffic", available_traffic_patterns())
@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_flit_conservation(kind, count, traffic, sim_mode):
    network, result = _run(kind, count, traffic, sim_mode)

    # No flit lost or duplicated anywhere in the fabric.
    network.verify_flit_conservation()

    created = network.total_created_flits()
    accounted = (
        network.total_ejected_flits()
        + network.flits_in_flight()
        + network.total_source_queued_flits()
    )
    assert created == accounted

    # The run produced traffic at all (guards against a silently dead net).
    assert created > 0
    assert result.measured_packets_created > 0


#: The staged (RC/VA/SA) pipeline threads different timing through the
#: same conservation machinery, so it gets its own pass over the full
#: kind x engine grid.
STAGED_CONFIG = SimulationConfig(
    warmup_cycles=40, measurement_cycles=80, drain_cycles=200,
    router_pipeline="staged",
)


@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_flit_conservation_staged_pipeline(kind, count, sim_mode):
    graph = make_arrangement(kind, count).graph
    network, result = simulate_noc(
        graph, STAGED_CONFIG, injection_rate=0.2, traffic="uniform", mode=sim_mode
    )
    network.verify_flit_conservation()
    created = network.total_created_flits()
    assert created == (
        network.total_ejected_flits()
        + network.flits_in_flight()
        + network.total_source_queued_flits()
    )
    assert result.measured_packets_created > 0


@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_measured_packet_accounting(kind, count, sim_mode):
    """created(measured) == ejected(measured) + in-flight(measured)."""
    network, result = _run(kind, count, "uniform", sim_mode)

    ejected_measured = sum(
        1
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    )
    at_sources = sum(
        endpoint.in_flight_measured_packets() for endpoint in network.endpoints
    )
    in_network = network.in_flight_measured_packets()

    assert result.measured_packets_ejected == ejected_measured
    assert result.measured_packets_created == ejected_measured + at_sources + in_network
    assert 0 <= result.measured_delivery_ratio <= 1.0


@pytest.mark.parametrize("workload_kind", ["dnn-pipeline", "client-server", "stencil"])
@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_trace_traffic_flit_conservation(kind, count, workload_kind, sim_mode):
    """Mapped-workload traces obey the same conservation law as synthetic traffic."""
    graph = make_arrangement(kind, count).graph
    workload = make_workload(workload_kind, num_tasks=count)
    mapping = map_workload("partition", workload, graph)
    traffic = trace_traffic_for(
        workload, mapping,
        endpoints_per_chiplet=FAST_CONFIG.endpoints_per_chiplet,
    )
    network, result = simulate_noc(
        graph, FAST_CONFIG, injection_rate=0.2, traffic=traffic, mode=sim_mode
    )

    network.verify_flit_conservation()
    created = network.total_created_flits()
    accounted = (
        network.total_ejected_flits()
        + network.flits_in_flight()
        + network.total_source_queued_flits()
    )
    assert created == accounted
    assert created > 0
    assert result.measured_packets_created > 0

    # Every packet travels along a demand of the trace, and silent
    # endpoints (rate scale 0) never create packets.
    demands = set(traffic.demands)
    for endpoint in network.endpoints:
        if traffic.injection_rate_scale(endpoint.endpoint_id) == 0.0:
            assert endpoint.created_packets == 0
        for packet in endpoint.ejected_packets:
            assert (packet.source, packet.destination) in demands


def _representative_faults(graph, scenario: str):
    return representative_faults(graph, scenario, seed=21)


@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_flit_conservation_under_faults(kind, count, fault_scenario, sim_mode):
    """Degraded topologies obey the same conservation law as healthy ones."""
    graph = make_arrangement(kind, count).graph
    faults = _representative_faults(graph, fault_scenario)
    network, result = simulate_noc(
        graph, FAST_CONFIG, injection_rate=0.2, traffic="uniform",
        faults=faults, mode=sim_mode,
    )

    network.verify_flit_conservation()
    created = network.total_created_flits()
    accounted = (
        network.total_ejected_flits()
        + network.flits_in_flight()
        + network.total_source_queued_flits()
    )
    assert created == accounted
    assert created > 0
    assert result.measured_packets_created > 0

    # Measured-packet bookkeeping stays consistent on the degraded fabric.
    ejected_measured = sum(
        1
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    )
    at_sources = sum(
        endpoint.in_flight_measured_packets() for endpoint in network.endpoints
    )
    assert result.measured_packets_created == (
        ejected_measured + at_sources + network.in_flight_measured_packets()
    )


@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_faulted_trace_traffic_flit_conservation(kind, count, sim_mode):
    """Workloads re-mapped onto a degraded topology conserve flits too."""
    graph = make_arrangement(kind, count).graph
    faults = _representative_faults(graph, "single-router")
    degraded = faults.apply(graph).graph
    workload = make_workload("dnn-pipeline", num_tasks=count)
    mapping = map_workload("partition", workload, degraded)
    traffic = trace_traffic_for(
        workload, mapping,
        endpoints_per_chiplet=FAST_CONFIG.endpoints_per_chiplet,
    )
    network, result = simulate_noc(
        degraded, FAST_CONFIG, injection_rate=0.2, traffic=traffic, mode=sim_mode
    )

    network.verify_flit_conservation()
    created = network.total_created_flits()
    accounted = (
        network.total_ejected_flits()
        + network.flits_in_flight()
        + network.total_source_queued_flits()
    )
    assert created == accounted
    assert created > 0
    assert result.measured_packets_created > 0


@pytest.mark.parametrize("kind,count", KIND_SIZES)
def test_component_accessors_are_nonnegative_and_consistent(kind, count):
    network, _ = _run(kind, count, "uniform", "active")
    router_total = sum(r.in_flight_measured_packets() for r in network.routers)
    assert router_total >= 0
    # The network total includes the router buffers plus the channels, so it
    # can never be smaller than the router-only count.
    assert network.in_flight_measured_packets() >= router_total
