"""Unit tests of the telemetry subsystem and its integration seams.

Covers the collector/tracer/provenance/progress/profiler primitives in
isolation, the store-embedded manifests and wall-time accounting of the sweep
runners, and the CLI surface (``simulate --metrics-out/--trace-out``,
``trace``, sweep progress summaries).  Cross-engine equality of the
observed artifacts lives in ``test_trace_equivalence.py``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.parallel import ParallelSweepRunner
from repro.noc.config import SimulationConfig
from repro.telemetry import (
    KERNEL_STAGES,
    MANIFEST_SCHEMA,
    SERIES_NAMES,
    TRACE_KINDS,
    FlitTracer,
    MetricsCollector,
    StageProfiler,
    SweepProgressTracker,
    TelemetrySession,
    build_manifest,
    config_digest,
    format_duration,
    format_progress,
    format_summary,
    git_revision,
    read_jsonl,
)

FAST_CONFIG = SimulationConfig(
    warmup_cycles=50, measurement_cycles=100, drain_cycles=200
)


class TestMetricsCollector:
    def test_record_cycle_closes_flow_counters(self):
        metrics = MetricsCollector()
        metrics._inj += 3
        metrics._link += 5
        metrics.record_cycle(buffered=4, vc_stalls=2, backlog=1)
        metrics._ej += 2
        metrics.record_cycle(buffered=0, vc_stalls=0, backlog=0)
        assert metrics.series() == {
            "buffer_occupancy": [4, 0],
            "link_flits": [5, 0],
            "vc_stalls": [2, 0],
            "in_flight": [3, 1],
            "injection_backlog": [1, 0],
        }

    def test_finalize_pads_to_horizon(self):
        metrics = MetricsCollector()
        metrics._inj += 2
        metrics.record_cycle(buffered=7, vc_stalls=1, backlog=3)
        metrics.finalize(4)
        assert metrics.total_cycles == 4
        assert metrics.cycles_recorded == 4
        # State series hold their last value; flow series read zero.
        assert metrics.buffer_occupancy == [7, 7, 7, 7]
        assert metrics.in_flight == [2, 2, 2, 2]
        assert metrics.link_flits == [0, 0, 0, 0]

    def test_finalize_never_truncates(self):
        metrics = MetricsCollector()
        for _ in range(3):
            metrics.record_cycle(buffered=0, vc_stalls=0, backlog=0)
        metrics.finalize(2)
        assert metrics.cycles_recorded == 3

    def test_summary_reports_peaks_and_means(self):
        metrics = MetricsCollector()
        metrics.record_cycle(buffered=2, vc_stalls=0, backlog=0)
        metrics.record_cycle(buffered=6, vc_stalls=0, backlog=0)
        summary = metrics.summary()
        assert summary["peak_buffer_occupancy"] == 6.0
        assert summary["mean_buffer_occupancy"] == 4.0
        assert set(summary) == {
            f"{stat}_{name}" for stat in ("peak", "mean") for name in SERIES_NAMES
        }


class TestFlitTracer:
    def _populated(self):
        tracer = FlitTracer()
        tracer.eject(9, 1, 0, 3, 0)
        tracer.inject(0, 1, 0, 2, 0)
        tracer.link_traverse(4, 1, 0, 5, 2, 0)
        tracer.vc_grant(5, 1, 0, 5, 1, 1)
        tracer.sa_grant(6, 1, 0, 5, 2, 0)
        return tracer

    def test_canonical_order_sorts_events(self):
        tracer = self._populated()
        events = tracer.canonical_events()
        assert events == sorted(events)
        assert [event[0] for event in events] == [0, 4, 5, 6, 9]
        assert len(tracer) == 5

    def test_jsonl_roundtrip(self):
        tracer = self._populated()
        assert read_jsonl(io.StringIO(tracer.to_jsonl())) == tracer.canonical_events()

    def test_jsonl_lines_are_named_records(self):
        tracer = self._populated()
        first = json.loads(tracer.to_jsonl().splitlines()[0])
        assert first == {
            "cycle": 0, "packet": 1, "flit": 0, "kind": "inject",
            "node": 2, "port": -1, "vc": 0,
        }
        assert first["kind"] in TRACE_KINDS

    def test_chrome_trace_structure(self):
        document = self._populated().to_chrome_trace(metadata={"engine": "active"})
        # Valid JSON end to end (what Perfetto actually parses).
        document = json.loads(json.dumps(document))
        assert document["otherData"]["engine"] == "active"
        events = document["traceEvents"]
        spans = [event for event in events if event["ph"] in ("b", "e")]
        assert {event["ph"] for event in spans} == {"b", "e"}
        (begin,) = [event for event in spans if event["ph"] == "b"]
        (end,) = [event for event in spans if event["ph"] == "e"]
        assert begin["id"] == end["id"] == 1
        assert (begin["ts"], end["ts"]) == (0, 9)
        instants = [event for event in events if event["ph"] == "i"]
        assert len(instants) == 5
        assert {event["name"] for event in instants} <= set(TRACE_KINDS)

    def test_incomplete_packet_has_no_span(self):
        tracer = FlitTracer()
        tracer.inject(0, 7, 0, 1, 0)
        document = tracer.to_chrome_trace()
        assert not [e for e in document["traceEvents"] if e["ph"] in ("b", "e")]


class TestProvenance:
    def test_config_digest_is_stable_and_sensitive(self):
        a = SimulationConfig(seed=1)
        b = SimulationConfig(seed=1)
        c = SimulationConfig(seed=2)
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(c)

    def test_build_manifest_fields(self):
        manifest = build_manifest(
            config=FAST_CONFIG, engine="vectorized", seed=7, wall_time_s=0.25,
            extra={"candidate": "x"},
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["engine"] == "vectorized"
        assert manifest["seed"] == 7
        assert manifest["config_hash"] == config_digest(FAST_CONFIG)
        assert manifest["config"]["warmup_cycles"] == 50
        assert manifest["candidate"] == "x"
        assert isinstance(manifest["numpy_version"], str)

    def test_extra_key_collision_raises(self):
        with pytest.raises(ValueError, match="collide"):
            build_manifest(extra={"schema": 99})

    def test_git_revision_returns_string(self):
        assert isinstance(git_revision(), str)
        assert git_revision(default="fallback", cwd="/") == "fallback"


class TestSweepProgressTracker:
    class _Record:
        def __init__(self, from_cache, wall_time_s=None):
            self.from_cache = from_cache
            self.wall_time_s = wall_time_s

    def test_rates_eta_and_cache_ratio(self):
        now = [0.0]
        tracker = SweepProgressTracker(jobs=2, clock=lambda: now[0])
        now[0] = 2.0
        progress = tracker.update(1, 4, self._Record(False, wall_time_s=3.0))
        assert progress.candidates_per_s == pytest.approx(0.5)
        assert progress.eta_s == pytest.approx(6.0)
        assert progress.cache_hit_ratio == 0.0
        assert progress.worker_utilization == pytest.approx(0.75)
        now[0] = 4.0
        progress = tracker.update(4, 4, self._Record(True))
        assert progress.finished
        assert progress.cache_hits == 1 and progress.fresh == 1
        assert progress.cache_hit_ratio == pytest.approx(0.5)
        assert progress.eta_s == 0.0

    def test_format_helpers(self):
        assert format_duration(0.5) == "500ms"
        assert format_duration(12.34) == "12.3s"
        assert format_duration(125) == "2m05s"
        now = [0.0]
        tracker = SweepProgressTracker(clock=lambda: now[0])
        now[0] = 1.0
        progress = tracker.update(1, 2, self._Record(False, wall_time_s=0.8))
        line = format_progress(progress, "hexamesh-19")
        assert "[1/2]" in line and "hexamesh-19" in line
        assert "sim 800ms" in line and "ETA" in line and "cache 0%" in line
        summary = format_summary(progress)
        assert "0 hits / 1 simulated" in summary
        assert "worker utilisation" in summary


class TestStageProfiler:
    def test_accumulates_per_stage(self):
        profiler = StageProfiler()
        profiler.add("va", 0.5)
        profiler.add("va", 0.25)
        profiler.add("sa", 0.1)
        assert profiler.seconds["va"] == pytest.approx(0.75)
        assert profiler.calls["va"] == 2
        assert profiler.total_seconds() == pytest.approx(0.85)
        assert list(profiler.as_dict()) == ["va", "sa"]

    def test_time_context_manager(self):
        profiler = StageProfiler()
        with profiler.time("deliver"):
            pass
        assert profiler.calls["deliver"] == 1
        assert profiler.seconds["deliver"] >= 0.0
        assert "deliver" in KERNEL_STAGES


class TestTelemetrySession:
    def test_full_enables_everything(self):
        session = TelemetrySession.full()
        assert session.metrics is not None
        assert session.tracer is not None
        assert session.profiler is not None
        assert session.observes_network

    def test_default_session_observes_nothing(self):
        assert not TelemetrySession().observes_network
        assert TelemetrySession(profiler=StageProfiler()).observes_network is False


class TestSweepRunnerTelemetry:
    GRID = ParallelSweepRunner.grid(("hexamesh",), (7,), (0.05,), ("uniform",))

    def test_manifest_embedded_in_store_entry(self, tmp_path):
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path)
        (record,) = runner.run(self.GRID)
        (key,) = runner.store.keys()
        manifest = runner.store.get(key).manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == record.seed
        assert manifest["engine"] == runner._engine
        assert manifest["wall_time_s"] == pytest.approx(record.wall_time_s)
        assert manifest["candidate"]["kind"] == "hexamesh"
        assert manifest["cache_key"] == key
        assert manifest["config"]["seed"] == record.seed

    def test_wall_time_fresh_vs_cache_hit(self, tmp_path):
        (fresh,) = ParallelSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=tmp_path
        ).run(self.GRID)
        assert fresh.wall_time_s is not None and fresh.wall_time_s > 0
        (cached,) = ParallelSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=tmp_path
        ).run(self.GRID)
        assert cached.from_cache
        assert cached.wall_time_s is None

    def test_records_compare_equal_across_wall_times(self, tmp_path):
        (fresh,) = ParallelSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=tmp_path
        ).run(self.GRID)
        (cached,) = ParallelSweepRunner(
            FAST_CONFIG, jobs=1, cache_dir=tmp_path
        ).run(self.GRID)
        assert fresh.result == cached.result
        assert fresh.seed == cached.seed


class TestBenchTelemetry:
    def test_overhead_scenario_registered(self):
        from repro import bench

        assert "telemetry-overhead-hexamesh61" in bench.available_scenarios(quick=True)
        assert ("telemetry-overhead-hexamesh61", "vectorized") in bench.HEADLINE_FLOORS

    def test_merge_extras_recomputes_overhead_ratio(self):
        from repro.bench import _merge_extras

        merged = _merge_extras(
            [
                {"plain_wall_seconds": 2.0, "telemetry_on_wall_seconds": 3.0},
                {"plain_wall_seconds": 1.0, "telemetry_on_wall_seconds": 4.0},
            ]
        )
        assert merged["plain_wall_seconds"] == 1.0
        assert merged["telemetry_on_wall_seconds"] == 3.0
        assert merged["telemetry_overhead_ratio"] == pytest.approx(3.0)


class TestCliTelemetry:
    def test_simulate_exports(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        exit_code = main(
            [
                "simulate", "hexamesh", "7", "--cycles", "100",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--trace-jsonl", str(jsonl_path),
            ]
        )
        assert exit_code == 0
        metrics = json.loads(metrics_path.read_text())
        assert set(metrics["series"]) == set(SERIES_NAMES)
        assert metrics["cycles_recorded"] == metrics["total_cycles"]
        assert metrics["provenance"]["engine"] == "active"
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        with open(jsonl_path, encoding="utf-8") as handle:
            events = read_jsonl(handle)
        assert events == sorted(events) and events

    def test_trace_check_passes(self, tmp_path, capsys):
        output = tmp_path / "trace.json"
        exit_code = main(
            [
                "trace", "hexamesh", "7", "--cycles", "100",
                "--output", str(output), "--check",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "trace equivalence check passed" in out
        assert json.loads(output.read_text())["traceEvents"]

    def test_sweep_progress_detail_and_summary(self, tmp_path, capsys):
        exit_code = main(
            [
                "sweep", "--kinds", "hexamesh", "--chiplets", "7",
                "--rates", "0.05", "--cycles", "100",
                "--cache-dir", str(tmp_path), "--progress", "detail",
                "--output", str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "cand/s" in err
        assert "cache: 0 hits / 1 simulated" in err
        # A second run resolves from cache and says so in the summary.
        exit_code = main(
            [
                "sweep", "--kinds", "hexamesh", "--chiplets", "7",
                "--rates", "0.05", "--cycles", "100",
                "--cache-dir", str(tmp_path), "--progress", "quiet",
                "--output", str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        assert "cache: 1 hits / 0 simulated (100% hit ratio)" in err
