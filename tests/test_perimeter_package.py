"""Tests for perimeter I/O placement and package feasibility checks."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.arrangements.perimeter import add_perimeter_io_chiplets
from repro.linkmodel.package import (
    check_package_feasibility,
    maximum_chiplet_area_for_frequency,
)
from repro.linkmodel.parameters import EvaluationParameters
from repro.linkmodel.phy import estimated_link_length_mm


class TestPerimeterIoPlacement:
    def test_io_chiplets_added_around_grid(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 16))
        assert plan.num_io_chiplets > 0
        assert len(plan.placement) == 16 + plan.num_io_chiplets

    def test_io_chiplets_have_io_role(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 9))
        for io_id in plan.io_chiplet_ids:
            assert plan.placement[io_id].role == "io"

    def test_compute_chiplets_keep_their_ids(self):
        arrangement = make_arrangement("brickwall", 9)
        plan = add_perimeter_io_chiplets(arrangement)
        for chiplet in arrangement.placement:
            assert plan.placement[chiplet.chiplet_id].rect == chiplet.rect

    def test_no_overlaps_in_combined_placement(self):
        for kind in ("grid", "brickwall", "hexamesh"):
            plan = add_perimeter_io_chiplets(make_arrangement(kind, 19))
            assert not plan.placement.has_overlaps()

    def test_zero_gap_creates_compute_to_io_links(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 16), gap=0.0)
        assert plan.io_links
        accessible = plan.compute_chiplets_with_io_access()
        # Only border chiplets can have I/O access; the 4x4 grid has 12.
        assert 0 < len(accessible) <= 12

    def test_positive_gap_removes_direct_links(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 16), gap=0.5)
        assert plan.io_links == ()

    def test_io_links_pair_compute_with_io(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 9))
        io_ids = set(plan.io_chiplet_ids)
        for compute_id, io_id in plan.io_links:
            assert compute_id not in io_ids
            assert io_id in io_ids

    def test_total_silicon_area_and_utilization(self):
        plan = add_perimeter_io_chiplets(make_arrangement("grid", 9))
        assert plan.total_silicon_area() > 9.0
        assert 0.0 < plan.package_utilization() <= 1.0

    def test_custom_io_dimensions(self):
        plan = add_perimeter_io_chiplets(
            make_arrangement("grid", 9), io_chiplet_width=0.5, io_chiplet_height=0.25
        )
        io_chiplet = plan.placement[plan.io_chiplet_ids[0]]
        assert io_chiplet.rect.width in (0.5, 0.25) or io_chiplet.rect.height in (0.5, 0.25)

    def test_honeycomb_rejected(self):
        with pytest.raises(ValueError):
            add_perimeter_io_chiplets(make_arrangement("honeycomb", 9))

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            add_perimeter_io_chiplets(make_arrangement("grid", 4), gap=-1.0)


class TestPackageFeasibility:
    def test_paper_setting_is_feasible_on_substrate(self):
        for count in (10, 37, 100):
            report = check_package_feasibility(make_arrangement("hexamesh", count))
            assert report.link_length_ok, f"N={count} should satisfy the 4 mm limit"
            assert report.violations() == []

    def test_link_length_shrinks_with_chiplet_count(self):
        small = check_package_feasibility(make_arrangement("hexamesh", 10))
        large = check_package_feasibility(make_arrangement("hexamesh", 91))
        assert large.link_length_mm < small.link_length_mm

    def test_paper_link_length_claims(self):
        # Section V: links are "below 4 mm in general"; our conservative
        # worst-case estimate (twice the bump-to-edge distance) satisfies the
        # 4 mm bound from N >= 10 and drops below 2 mm for larger designs.
        for kind in ("grid", "brickwall", "hexamesh"):
            general = check_package_feasibility(make_arrangement(kind, 10))
            assert general.link_length_mm <= 4.0 + 1e-6
            large = check_package_feasibility(
                make_arrangement(kind, 40), silicon_interposer=True
            )
            assert large.link_length_mm <= 2.0 + 1e-6

    def test_interposer_limit_stricter_than_substrate(self):
        arrangement = make_arrangement("grid", 4)
        substrate = check_package_feasibility(arrangement)
        interposer = check_package_feasibility(arrangement, silicon_interposer=True)
        assert interposer.max_link_length_mm < substrate.max_link_length_mm

    def test_infeasible_configuration_detected(self):
        # One giant 800 mm² chiplet pair on an interposer exceeds 2 mm links.
        parameters = EvaluationParameters(total_chiplet_area_mm2=1600.0)
        report = check_package_feasibility(
            make_arrangement("grid", 2),
            parameters,
            silicon_interposer=True,
        )
        assert not report.link_length_ok
        assert report.violations()

    def test_package_dimensions_scale_with_shape(self):
        report = check_package_feasibility(make_arrangement("grid", 16))
        # 4x4 chiplets of sqrt(50) mm each side.
        assert report.package_width_mm == pytest.approx(4 * report.shape.width_mm)
        assert report.package_area_mm2 >= 800.0

    def test_hand_optimized_small_designs_use_max_degree(self):
        report = check_package_feasibility(make_arrangement("grid", 4))
        assert report.shape.layout_style == "hand-optimized"


class TestMaximumChipletArea:
    def test_round_trip_with_link_length(self):
        area = maximum_chiplet_area_for_frequency("hexamesh", 0.4)
        from repro.linkmodel.shape import solve_hex_shape

        shape = solve_hex_shape(area, 0.4)
        assert estimated_link_length_mm(shape.bump_distance_mm) == pytest.approx(4.0, rel=1e-6)

    def test_interposer_allows_smaller_chiplets_only(self):
        substrate = maximum_chiplet_area_for_frequency("grid", 0.4)
        interposer = maximum_chiplet_area_for_frequency(
            "grid", 0.4, silicon_interposer=True
        )
        assert interposer < substrate

    def test_grid_versus_hex_layout(self):
        grid_area = maximum_chiplet_area_for_frequency("grid", 0.4)
        hex_area = maximum_chiplet_area_for_frequency("hexamesh", 0.4)
        assert grid_area > 0 and hex_area > 0
