"""Tests for the SVG and ASCII renderers."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.linkmodel.shape import solve_grid_shape, solve_hex_shape
from repro.viz.ascii_art import ascii_placement
from repro.viz.svg import placement_svg, save_svg, sector_layout_svg


class TestPlacementSvg:
    def test_valid_svg_document(self):
        arrangement = make_arrangement("hexamesh", 19)
        svg = placement_svg(arrangement.placement)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_one_rect_per_chiplet(self):
        arrangement = make_arrangement("grid", 16)
        svg = placement_svg(arrangement.placement)
        assert svg.count("<rect") == 16

    def test_ids_optional(self):
        arrangement = make_arrangement("grid", 4)
        with_ids = placement_svg(arrangement.placement, show_ids=True)
        without_ids = placement_svg(arrangement.placement, show_ids=False)
        assert with_ids.count("<text") == 4
        assert without_ids.count("<text") == 0

    def test_scale_validation(self):
        arrangement = make_arrangement("grid", 4)
        with pytest.raises(ValueError):
            placement_svg(arrangement.placement, scale=0)

    def test_save_svg(self, tmp_path):
        arrangement = make_arrangement("brickwall", 9)
        path = tmp_path / "plot.svg"
        save_svg(placement_svg(arrangement.placement), str(path))
        assert path.read_text().startswith("<svg")

    def test_save_svg_rejects_non_svg(self, tmp_path):
        with pytest.raises(ValueError):
            save_svg("not svg", str(tmp_path / "x.svg"))


class TestSectorLayoutSvg:
    def test_grid_layout_rendering(self):
        shape = solve_grid_shape(16.0, 0.4)
        svg = sector_layout_svg(shape.sector_layout())
        assert svg.count("<polygon") == 5  # 4 link sectors + 1 power sector
        assert "power" in svg

    def test_hex_layout_rendering(self):
        shape = solve_hex_shape(16.0, 0.4)
        svg = sector_layout_svg(shape.sector_layout())
        assert svg.count("<polygon") == 7  # 6 link sectors + 1 power sector
        assert "north_west" in svg


class TestAsciiArt:
    def test_contains_all_chiplet_ids(self):
        arrangement = make_arrangement("grid", 9)
        art = ascii_placement(arrangement.placement)
        for chiplet_id in range(9):
            assert str(chiplet_id) in art

    def test_brickwall_offset_visible(self):
        arrangement = make_arrangement("brickwall", 9)
        art = ascii_placement(arrangement.placement)
        assert "#" in art
        assert len(art.splitlines()) > 3

    def test_hexamesh_renders(self):
        arrangement = make_arrangement("hexamesh", 7)
        art = ascii_placement(arrangement.placement)
        assert "6" in art

    def test_cell_size_validation(self):
        arrangement = make_arrangement("grid", 4)
        with pytest.raises(ValueError):
            ascii_placement(arrangement.placement, cell_width=1)
