"""Edge-case equivalence tests for the array kernel.

The numpy kernel behind the vectorized and batched engines switches
between scalar and array paths by work-set size (`_SCALAR_MAX`,
`_ENUM_MAX`, `_VA_TAIL_MAX`), so the regimes most likely to expose a
path divergence are the extremes: nothing to do at all (empty generation
schedules), the smallest legal topology (two routers), saturated
shallow buffers (every VC occupied, escape-patience churn), and degraded
topologies.  Every case asserts bit-identical results against the legacy
reference across the full mode grid, complementing the fixed-scenario
golden fixtures of ``test_golden_traces.py``.
"""

from __future__ import annotations

import math
from dataclasses import asdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.resilience import sample_survivable_faults

from sim_modes import FAST_SIM_MODES, simulate_noc


def _nan_to_none(value):
    """NaN-safe comparison shape: empty latency summaries report NaN
    statistics, and NaN never compares equal — not even to itself."""
    if isinstance(value, dict):
        return {key: _nan_to_none(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_nan_to_none(item) for item in value]
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _run(graph, config, rate, mode, *, faults=None):
    """One simulation point; returns the full comparable observation."""
    network, result = simulate_noc(
        graph, config, injection_rate=rate, faults=faults, mode=mode
    )
    network.verify_flit_conservation()
    latencies = sorted(
        packet.latency
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    )
    created = sum(endpoint.created_packets for endpoint in network.endpoints)
    return _nan_to_none(asdict(result)), latencies, created


class TestEmptyGenerationSchedule:
    """Zero injection rate: the kernel's cycle loop has no work at all."""

    def test_zero_rate_is_bit_identical_and_silent(self, fast_sim_mode):
        config = SimulationConfig(
            warmup_cycles=50, measurement_cycles=100, drain_cycles=200, seed=11
        )
        graph = make_arrangement("hexamesh", 7).graph
        legacy = _run(graph, config, 0.0, "legacy")
        fast = _run(graph, config, 0.0, fast_sim_mode)
        assert fast == legacy
        result, latencies, created = fast
        assert created == 0
        assert latencies == []
        assert result["measured_packets_ejected"] == 0
        # No traffic means nothing to drain: every engine must take the
        # same early exit right at the measurement boundary.
        assert result["cycles_simulated"] == legacy[0]["cycles_simulated"]

    def test_zero_rate_packet_size_two(self, fast_sim_mode):
        """Multi-flit configs disable the fused injection path; still silent."""
        config = SimulationConfig(
            warmup_cycles=40, measurement_cycles=80, drain_cycles=160,
            packet_size_flits=2, seed=5,
        )
        graph = make_arrangement("grid", 4).graph
        assert _run(graph, config, 0.0, fast_sim_mode) == _run(
            graph, config, 0.0, "legacy"
        )


class TestTwoRouterTopology:
    """The minimum topology: one link, ejection-heavy traffic."""

    @pytest.mark.parametrize("rate", [0.05, 0.5, 1.0])
    def test_two_router_grid_matches_legacy(self, fast_sim_mode, rate):
        config = SimulationConfig(
            warmup_cycles=50, measurement_cycles=120, drain_cycles=300, seed=3
        )
        graph = make_arrangement("grid", 2).graph
        legacy = _run(graph, config, rate, "legacy")
        assert _run(graph, config, rate, fast_sim_mode) == legacy
        assert legacy[0]["measured_packets_ejected"] > 0

    def test_two_router_single_vc(self, fast_sim_mode):
        """One VC folds the adaptive and escape classes into one channel."""
        config = SimulationConfig(
            num_virtual_channels=1,
            warmup_cycles=40, measurement_cycles=100, drain_cycles=250, seed=9,
        )
        graph = make_arrangement("grid", 2).graph
        assert _run(graph, config, 0.3, fast_sim_mode) == _run(
            graph, config, 0.3, "legacy"
        )


class TestAllVcsOccupiedBackpressure:
    """Saturation with shallow buffers: every VC occupied, credits scarce."""

    @pytest.mark.parametrize("depth", [1, 2])
    def test_saturated_shallow_buffers_match_legacy(self, fast_sim_mode, depth):
        config = SimulationConfig(
            buffer_depth_flits=depth,
            warmup_cycles=40, measurement_cycles=100, drain_cycles=400, seed=13,
        )
        graph = make_arrangement("hexamesh", 7).graph
        legacy = _run(graph, config, 1.0, "legacy")
        assert _run(graph, config, 1.0, fast_sim_mode) == legacy
        assert legacy[0]["measured_packets_ejected"] > 0

    def test_impatient_escape_under_backpressure(self, fast_sim_mode):
        """A one-cycle escape patience forces constant escape-path traffic."""
        config = SimulationConfig(
            buffer_depth_flits=2, escape_patience_cycles=1,
            warmup_cycles=40, measurement_cycles=80, drain_cycles=300, seed=21,
        )
        graph = make_arrangement("brickwall", 9).graph
        assert _run(graph, config, 1.0, fast_sim_mode) == _run(
            graph, config, 1.0, "legacy"
        )


class TestFaultedTopologies:
    """Degraded topologies route around the damage identically."""

    @pytest.mark.parametrize("link_faults,router_faults", [(2, 0), (1, 1)])
    def test_degraded_hexamesh_matches_legacy(
        self, fast_sim_mode, link_faults, router_faults
    ):
        config = SimulationConfig(
            warmup_cycles=50, measurement_cycles=120, drain_cycles=300, seed=17
        )
        graph = make_arrangement("hexamesh", 19).graph
        faults = sample_survivable_faults(
            graph,
            num_link_faults=link_faults,
            num_router_faults=router_faults,
            seed=41,
        )
        legacy = _run(graph, config, 0.2, "legacy", faults=faults)
        assert _run(graph, config, 0.2, fast_sim_mode, faults=faults) == legacy
        assert legacy[0]["measured_packets_ejected"] > 0

    def test_faulted_backpressure_combination(self, fast_sim_mode):
        """Faults and saturation together: the hardest arbitration regime."""
        config = SimulationConfig(
            buffer_depth_flits=2,
            warmup_cycles=40, measurement_cycles=80, drain_cycles=300, seed=29,
        )
        graph = make_arrangement("hexamesh", 7).graph
        faults = sample_survivable_faults(graph, num_link_faults=1, seed=53)
        assert _run(graph, config, 1.0, fast_sim_mode, faults=faults) == _run(
            graph, config, 1.0, "legacy", faults=faults
        )


class TestKernelEdgeProperties:
    """Randomized sweep over the edge regimes (hypothesis)."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=st.sampled_from(["grid", "brickwall", "hexamesh"]),
        count=st.integers(min_value=2, max_value=7),
        rate=st.sampled_from([0.0, 0.1, 1.0]),
        depth=st.sampled_from([1, 2, 8]),
        vcs=st.sampled_from([1, 2, 4]),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        mode=st.sampled_from(FAST_SIM_MODES),
    )
    def test_edge_regimes_match_legacy(
        self, kind, count, rate, depth, vcs, seed, mode
    ):
        config = SimulationConfig(
            num_virtual_channels=vcs,
            buffer_depth_flits=depth,
            warmup_cycles=30, measurement_cycles=60, drain_cycles=150,
            seed=seed,
        )
        graph = make_arrangement(kind, count).graph
        assert _run(graph, config, rate, mode) == _run(
            graph, config, rate, "legacy"
        )
