"""Unit tests for the graph-bisection portfolio (the METIS substitute)."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.graphs.analytical import bisection_bandwidth_formula
from repro.graphs.model import ChipGraph
from repro.partition.common import (
    balanced_target_size,
    complement,
    cut_size,
    is_balanced,
    validate_partition,
)
from repro.partition.estimator import (
    BisectionResult,
    estimate_bisection_bandwidth,
    find_best_bisection,
)
from repro.partition.fiduccia_mattheyses import fiduccia_mattheyses_refine
from repro.partition.greedy import bfs_grow_partition, random_balanced_partition
from repro.partition.kernighan_lin import kernighan_lin_refine
from repro.partition.spectral import fiedler_vector, spectral_bisection


def _grid_graph(side):
    return make_arrangement("grid", side * side, "regular").graph


class TestCommonHelpers:
    def test_validate_partition_rejects_trivial_sides(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            validate_partition(graph, set())
        with pytest.raises(ValueError):
            validate_partition(graph, {0, 1, 2})

    def test_validate_partition_rejects_unknown_nodes(self):
        graph = ChipGraph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            validate_partition(graph, {7})

    def test_cut_size(self):
        graph = ChipGraph(edges=[(0, 1), (1, 2), (2, 3)])
        assert cut_size(graph, {0, 1}) == 1
        assert cut_size(graph, {0, 2}) == 3

    def test_is_balanced(self):
        graph = ChipGraph(nodes=range(5), edges=[(0, 1)])
        assert is_balanced(graph, {0, 1})
        assert is_balanced(graph, {0, 1, 2})
        assert not is_balanced(graph, {0})

    def test_balanced_target_size(self):
        assert balanced_target_size(10) == 5
        assert balanced_target_size(11) == 5

    def test_complement(self):
        graph = ChipGraph(nodes=range(4))
        assert complement(graph, {0, 2}) == {1, 3}


class TestGreedy:
    def test_bfs_partition_size(self):
        graph = _grid_graph(4)
        part = bfs_grow_partition(graph, seed_node=0)
        assert len(part) == 8

    def test_bfs_partition_is_connected_region(self):
        graph = _grid_graph(4)
        part = bfs_grow_partition(graph, seed_node=0)
        sub = graph.subgraph(part)
        from repro.graphs.metrics import is_connected

        assert is_connected(sub)

    def test_unknown_seed_rejected(self):
        with pytest.raises(KeyError):
            bfs_grow_partition(_grid_graph(3), seed_node=99)

    def test_random_partition_is_balanced(self):
        graph = _grid_graph(5)
        part = random_balanced_partition(graph)
        assert len(part) == 12


class TestSpectral:
    def test_fiedler_vector_dimensions(self):
        graph = _grid_graph(3)
        nodes, vector = fiedler_vector(graph)
        assert len(nodes) == 9
        assert vector.shape == (9,)

    def test_spectral_bisection_is_balanced(self):
        graph = _grid_graph(4)
        part = spectral_bisection(graph)
        assert len(part) == 8

    def test_spectral_bisection_on_even_grid_is_reasonable(self):
        # The Fiedler eigenvalue of a square grid is degenerate (horizontal
        # and vertical cuts are equivalent), so the raw spectral cut may be a
        # rotated combination; it must still be close to the optimum of 4 and
        # the refined estimator (tested below) recovers the optimum exactly.
        graph = _grid_graph(4)
        part = spectral_bisection(graph)
        assert cut_size(graph, part) <= 8

    def test_too_small_graph_rejected(self):
        with pytest.raises(ValueError):
            spectral_bisection(ChipGraph(nodes=[0]))


class TestRefinement:
    def test_kl_never_worsens_the_cut(self):
        graph = _grid_graph(4)
        initial = random_balanced_partition(graph)
        refined = kernighan_lin_refine(graph, initial)
        assert cut_size(graph, refined) <= cut_size(graph, initial)
        assert len(refined) == len(initial)

    def test_fm_never_worsens_the_cut(self):
        graph = _grid_graph(4)
        initial = random_balanced_partition(graph)
        refined = fiduccia_mattheyses_refine(graph, initial)
        assert cut_size(graph, refined) <= cut_size(graph, initial)

    def test_fm_respects_balance(self):
        graph = _grid_graph(5)
        initial = random_balanced_partition(graph)
        refined = fiduccia_mattheyses_refine(graph, initial)
        assert abs(len(refined) - (graph.num_nodes - len(refined))) <= 1

    def test_kl_finds_optimal_cut_from_bad_start(self):
        graph = _grid_graph(4)
        # Deliberately poor starting partition: alternating columns.
        bad = {node for node in graph.nodes() if (node % 4) in (0, 2)}
        refined = kernighan_lin_refine(graph, bad)
        assert cut_size(graph, refined) <= cut_size(graph, bad)

    def test_refinement_input_not_modified(self):
        graph = _grid_graph(3)
        initial = bfs_grow_partition(graph, seed_node=0)
        snapshot = set(initial)
        kernighan_lin_refine(graph, initial)
        fiduccia_mattheyses_refine(graph, initial)
        assert initial == snapshot


class TestEstimator:
    def test_result_type(self):
        graph = _grid_graph(3)
        result = find_best_bisection(graph)
        assert isinstance(result, BisectionResult)
        assert result.cut_edges == result.bisection_bandwidth
        assert 0 < len(result.part) < graph.num_nodes

    @pytest.mark.parametrize("side", [2, 4, 6, 8, 10])
    def test_even_grid_matches_formula(self, side):
        graph = _grid_graph(side)
        estimate = estimate_bisection_bandwidth(graph)
        assert estimate == pytest.approx(bisection_bandwidth_formula("grid", side * side))

    @pytest.mark.parametrize("rings", [1, 2, 3])
    def test_hexamesh_matches_formula(self, rings):
        count = 1 + 3 * rings * (rings + 1)
        graph = make_arrangement("hexamesh", count, "regular").graph
        estimate = estimate_bisection_bandwidth(graph)
        assert estimate == pytest.approx(bisection_bandwidth_formula("hexamesh", count))

    @pytest.mark.parametrize("side", [4, 6])
    def test_brickwall_matches_formula(self, side):
        count = side * side
        graph = make_arrangement("brickwall", count, "regular").graph
        estimate = estimate_bisection_bandwidth(graph)
        assert estimate == pytest.approx(bisection_bandwidth_formula("brickwall", count))

    def test_odd_grid_estimate_close_to_formula(self):
        # For odd sides a perfectly balanced cut needs one extra link, so the
        # estimate may exceed the idealised formula by a small amount.
        graph = _grid_graph(5)
        estimate = estimate_bisection_bandwidth(graph)
        formula = bisection_bandwidth_formula("grid", 25)
        assert formula <= estimate <= formula + 2

    def test_single_node_graph(self):
        assert estimate_bisection_bandwidth(ChipGraph(nodes=[0])) == 0

    def test_two_node_graph(self):
        graph = ChipGraph(edges=[(0, 1)])
        assert estimate_bisection_bandwidth(graph) == 1

    def test_deterministic_for_fixed_seed(self):
        graph = make_arrangement("hexamesh", 24).graph
        first = estimate_bisection_bandwidth(graph, seed=3)
        second = estimate_bisection_bandwidth(graph, seed=3)
        assert first == second

    def test_estimate_never_below_true_minimum_on_path(self):
        # The minimum balanced cut of a path graph is exactly one edge.
        graph = ChipGraph(edges=[(i, i + 1) for i in range(9)])
        assert estimate_bisection_bandwidth(graph) == 1

    def test_matches_networkx_kernighan_lin_quality(self):
        import networkx as nx

        graph = make_arrangement("hexamesh", 40).graph
        ours = estimate_bisection_bandwidth(graph)
        nx_graph = graph.to_networkx()
        nx_cut = min(
            nx.cut_size(nx_graph, *nx.algorithms.community.kernighan_lin_bisection(nx_graph, seed=seed))
            for seed in range(3)
        )
        assert ours <= nx_cut + 2


class TestBisectNodes:
    """Node-subset bisection with fallbacks (repro.partition.recursive)."""

    def test_trivial_subsets(self):
        from repro.partition.recursive import bisect_nodes

        graph = _grid_graph(3)
        assert bisect_nodes(graph, []) == ([], [])
        assert bisect_nodes(graph, [4]) == ([4], [])
        assert bisect_nodes(graph, [7, 2]) == ([2], [7])

    def test_balanced_and_deterministic(self):
        from repro.partition.recursive import bisect_nodes

        graph = make_arrangement("hexamesh", 19).graph
        nodes = list(range(19))
        side_a, side_b = bisect_nodes(graph, nodes, seed=1)
        assert sorted(side_a + side_b) == nodes
        assert abs(len(side_a) - len(side_b)) <= 1
        assert side_a[0] == min(side_a + side_b)  # smallest node leads
        again = bisect_nodes(graph, set(nodes), seed=1)
        assert (side_a, side_b) == again

    def test_disconnected_and_edge_free_subsets(self):
        from repro.partition.recursive import bisect_nodes

        graph = _grid_graph(4)
        # Two far-apart corners plus isolated-in-subset nodes: the induced
        # subgraph is disconnected / edge-free but the split still balances.
        subset = [0, 3, 12, 15, 5, 10]
        side_a, side_b = bisect_nodes(graph, subset, seed=0)
        assert sorted(side_a + side_b) == sorted(subset)
        assert abs(len(side_a) - len(side_b)) <= 1
