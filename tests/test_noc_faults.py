"""Fault sets and degraded topologies: normalisation, application, errors."""

from __future__ import annotations

import pytest

from repro.graphs.metrics import is_connected
from repro.graphs.model import ChipGraph
from repro.noc.config import SimulationConfig
from repro.noc.faults import (
    DegradedTopology,
    FaultedTopologyError,
    FaultSet,
    apply_faults,
)
from repro.noc.routing import RoutingTables
from repro.noc.simulator import NocSimulator


class TestFaultSetNormalization:
    def test_links_are_sorted_deduplicated_pairs(self):
        faults = FaultSet(failed_links=((3, 0), (0, 3), (2, 1)))
        assert faults.failed_links == ((0, 3), (1, 2))

    def test_routers_are_sorted_and_deduplicated(self):
        faults = FaultSet(failed_routers=(5, 2, 5, 2))
        assert faults.failed_routers == (2, 5)

    def test_equal_physical_faults_compare_equal(self):
        assert FaultSet(failed_links=((1, 0),)) == FaultSet(failed_links=((0, 1),))

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="distinct routers"):
            FaultSet(failed_links=((2, 2),))

    def test_negative_router_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSet(failed_routers=(-1,))

    def test_non_integer_components_rejected(self):
        with pytest.raises(ValueError, match="integer router id"):
            FaultSet(failed_routers=("3",))
        with pytest.raises(ValueError, match="pair"):
            FaultSet(failed_links=((1, 2, 3),))

    def test_empty_properties(self):
        empty = FaultSet()
        assert empty.is_empty
        assert empty.num_faults == 0
        assert empty.label == "healthy"
        faulted = FaultSet(failed_links=((0, 1),), failed_routers=(4,))
        assert not faulted.is_empty
        assert faulted.num_faults == 2
        assert faulted.label == "1L+1R"

    def test_key_dict_is_jsonable_and_canonical(self):
        import json

        faults = FaultSet(failed_links=((3, 1),), failed_routers=(2,))
        key = faults.key_dict()
        assert json.loads(json.dumps(key)) == {
            "failed_links": [[1, 3]],
            "failed_routers": [2],
        }


class TestFaultSetParse:
    def test_parse_links_and_routers(self):
        faults = FaultSet.parse("0-1, 4-2", "7, 3")
        assert faults.failed_links == ((0, 1), (2, 4))
        assert faults.failed_routers == (3, 7)

    def test_parse_empty_strings(self):
        assert FaultSet.parse("", "").is_empty

    def test_parse_rejects_malformed_link(self):
        with pytest.raises(ValueError, match="<router>-<router>"):
            FaultSet.parse("0:1", "")


class TestValidateAgainst:
    def test_unknown_router_message(self, small_grid):
        faults = FaultSet(failed_routers=(99,))
        with pytest.raises(FaultedTopologyError, match=r"failed router 99 is not"):
            faults.validate_against(small_grid.graph)

    def test_unknown_link_message(self, small_grid):
        faults = FaultSet(failed_links=((0, 8),))
        with pytest.raises(FaultedTopologyError, match=r"failed link 0-8 is not a link"):
            faults.validate_against(small_grid.graph)


class TestApply:
    def test_failed_link_is_cut(self, small_grid):
        graph = small_grid.graph
        link = graph.edges()[0]
        degraded = FaultSet(failed_links=(link,)).apply(graph)
        assert degraded.graph.num_nodes == graph.num_nodes
        assert degraded.graph.num_edges == graph.num_edges - 1
        assert degraded.surviving_routers == tuple(range(graph.num_nodes))
        # Node ids are unchanged when no router failed, so the cut link
        # is absent under its original ids.
        assert not degraded.graph.has_edge(*link)

    def test_failed_router_relabels_survivors(self, small_hexamesh):
        graph = small_hexamesh.graph
        degraded = FaultSet(failed_routers=(3,)).apply(graph)
        assert degraded.num_routers == graph.num_nodes - 1
        assert degraded.surviving_routers == (0, 1, 2, 4, 5, 6)
        assert sorted(degraded.graph.nodes()) == list(range(6))
        assert degraded.original_id(3) == 4
        assert degraded.degraded_id(4) == 3
        with pytest.raises(KeyError, match="did not survive"):
            degraded.degraded_id(3)

    def test_original_edge_maps_back(self, small_hexamesh):
        graph = small_hexamesh.graph
        degraded = FaultSet(failed_routers=(0,)).apply(graph)
        for first, second in degraded.graph.edges():
            original = degraded.original_edge(first, second)
            assert graph.has_edge(*original)

    def test_degraded_graph_is_connected_and_routable(self, medium_hexamesh):
        graph = medium_hexamesh.graph
        degraded = FaultSet(failed_links=((0, 1),), failed_routers=(5,)).apply(graph)
        assert is_connected(degraded.graph)
        tables = RoutingTables(degraded.graph)
        assert tables.num_routers == degraded.num_routers

    def test_disconnecting_fault_raises(self, path_graph):
        with pytest.raises(FaultedTopologyError, match="disconnects the topology"):
            FaultSet(failed_links=((1, 2),)).apply(path_graph)

    def test_isolating_fault_raises(self, path_graph):
        with pytest.raises(FaultedTopologyError, match="isolates router 0"):
            FaultSet(failed_links=((0, 1),)).apply(path_graph)

    def test_too_few_survivors_raises(self, path_graph):
        with pytest.raises(FaultedTopologyError, match="at least two routers"):
            FaultSet(failed_routers=(0, 1, 2)).apply(path_graph)

    def test_apply_faults_none_is_identity(self, cycle_graph):
        degraded = apply_faults(cycle_graph, None)
        assert isinstance(degraded, DegradedTopology)
        assert degraded.graph.num_edges == cycle_graph.num_edges
        assert degraded.fault_set.is_empty

    def test_router_fault_also_absorbs_its_links(self):
        graph = ChipGraph(nodes=range(4), edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        degraded = FaultSet(failed_routers=(0,), failed_links=((0, 1),)).apply(graph)
        # Router 0 takes edges (0,1), (3,0), (0,2) with it; survivors keep
        # the 1-2-3 path.
        assert degraded.num_routers == 3
        assert degraded.graph.num_edges == 2


class TestSimulatorIntegration:
    CONFIG = SimulationConfig(warmup_cycles=40, measurement_cycles=80, drain_cycles=200)

    def test_simulator_runs_on_degraded_topology(self, small_hexamesh):
        faults = FaultSet(failed_routers=(6,))
        simulator = NocSimulator(
            small_hexamesh.graph, self.CONFIG, injection_rate=0.2, faults=faults
        )
        assert simulator.fault_set == faults
        assert simulator.degraded_topology is not None
        assert simulator.degraded_topology.num_routers == 6
        result = simulator.run()
        assert result.num_routers == 6
        assert result.num_endpoints == 6 * self.CONFIG.endpoints_per_chiplet
        assert result.measured_packets_ejected > 0
        simulator.network.verify_flit_conservation()

    def test_empty_fault_set_changes_nothing(self, small_grid):
        healthy = NocSimulator(small_grid.graph, self.CONFIG, injection_rate=0.2)
        faulted = NocSimulator(
            small_grid.graph, self.CONFIG, injection_rate=0.2, faults=FaultSet()
        )
        assert faulted.degraded_topology is None
        assert healthy.run() == faulted.run()

    def test_unsurvivable_fault_set_raises_at_construction(self, path_graph):
        with pytest.raises(FaultedTopologyError, match="disconnects"):
            NocSimulator(
                path_graph,
                self.CONFIG,
                injection_rate=0.1,
                faults=FaultSet(failed_links=((1, 2),)),
            )

    def test_no_degraded_channel_maps_to_a_failed_link(self, medium_hexamesh):
        """Structural form of "packets never traverse a failed link"."""
        graph = medium_hexamesh.graph
        faults = FaultSet(failed_links=(graph.edges()[0], graph.edges()[5]))
        simulator = NocSimulator(graph, self.CONFIG, injection_rate=0.2, faults=faults)
        degraded = simulator.degraded_topology
        failed = set(faults.failed_links)
        for first, second in degraded.graph.edges():
            original = degraded.original_edge(first, second)
            assert original not in failed
            assert graph.has_edge(*original)
