"""Unit tests for the manufacturing-cost extension."""

import pytest

from repro.cost.manufacturing import (
    ChipletCostBreakdown,
    CostModelParameters,
    chiplet_cost,
    compare_monolithic_vs_chiplets,
    monolithic_cost,
)
from repro.cost.wafer import die_cost, dies_per_wafer
from repro.cost.yield_model import (
    assembly_yield,
    known_good_die_yield,
    negative_binomial_yield,
)


class TestYieldModel:
    def test_zero_defect_density_gives_perfect_yield(self):
        assert negative_binomial_yield(800.0, 0.0) == pytest.approx(1.0)

    def test_yield_decreases_with_area(self):
        small = negative_binomial_yield(8.0, 0.1)
        large = negative_binomial_yield(800.0, 0.1)
        assert small > large

    def test_yield_decreases_with_defect_density(self):
        clean = negative_binomial_yield(100.0, 0.05)
        dirty = negative_binomial_yield(100.0, 0.5)
        assert clean > dirty

    def test_yield_is_a_probability(self):
        for area in (1.0, 100.0, 800.0):
            for density in (0.05, 0.2, 1.0):
                assert 0.0 < negative_binomial_yield(area, density) <= 1.0

    def test_known_reference_value(self):
        # 100 mm² at 0.1 defects/cm², alpha = 3: (1 + 1*0.1/3)^-3.
        assert negative_binomial_yield(100.0, 0.1) == pytest.approx(
            (1 + 0.1 / 3) ** -3
        )

    def test_known_good_die_with_perfect_test(self):
        assert known_good_die_yield(0.8, test_coverage=1.0) == pytest.approx(1.0)

    def test_known_good_die_with_imperfect_test(self):
        kgd = known_good_die_yield(0.8, test_coverage=0.9)
        assert 0.8 < kgd < 1.0

    def test_assembly_yield(self):
        assert assembly_yield(1, 0.99) == pytest.approx(0.99)
        assert assembly_yield(10, 0.99) == pytest.approx(0.99**10)
        with pytest.raises(ValueError):
            assembly_yield(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            negative_binomial_yield(-1.0, 0.1)
        with pytest.raises(ValueError):
            known_good_die_yield(1.5)


class TestWafer:
    def test_dies_per_wafer_decreases_with_area(self):
        assert dies_per_wafer(100.0) > dies_per_wafer(400.0)

    def test_reasonable_count_for_small_die(self):
        # A 50 mm² die on a 300 mm wafer yields on the order of a thousand dies.
        count = dies_per_wafer(50.0)
        assert 1000 < count < 1500

    def test_die_cost_increases_with_area(self):
        small = die_cost(50.0, 10000.0, 0.9)
        large = die_cost(500.0, 10000.0, 0.9)
        assert large > small

    def test_die_cost_increases_with_lower_yield(self):
        good = die_cost(100.0, 10000.0, 0.95)
        bad = die_cost(100.0, 10000.0, 0.5)
        assert bad > good

    def test_huge_die_rejected(self):
        with pytest.raises(ValueError):
            die_cost(100000.0, 10000.0, 0.9)

    def test_invalid_yield_rejected(self):
        with pytest.raises(ValueError):
            die_cost(100.0, 10000.0, 0.0)


class TestManufacturingComparison:
    def test_monolithic_breakdown(self):
        breakdown = monolithic_cost(CostModelParameters())
        assert breakdown.die_area_mm2 == pytest.approx(800.0)
        assert breakdown.total_cost > breakdown.recurring_cost > 0

    def test_chiplet_breakdown(self):
        breakdown = chiplet_cost(CostModelParameters(), num_chiplets=36, links_per_chiplet=5.0)
        assert isinstance(breakdown, ChipletCostBreakdown)
        assert breakdown.chiplet_area_mm2 > 800.0 / 36  # PHY overhead added
        assert breakdown.chiplet_yield > 0.8  # small dies yield well

    def test_chiplets_much_better_yield_than_monolithic(self):
        parameters = CostModelParameters(defect_density_per_cm2=0.2)
        mono = monolithic_cost(parameters)
        chiplets = chiplet_cost(parameters, 64, 4.0)
        assert chiplets.chiplet_yield > mono.die_yield

    def test_chiplets_cheaper_at_high_defect_density(self):
        parameters = CostModelParameters(defect_density_per_cm2=0.5)
        comparison = compare_monolithic_vs_chiplets(parameters, 36, 5.0)
        assert comparison["cost_ratio"] < 1.0

    def test_phy_overhead_increases_with_links(self):
        parameters = CostModelParameters()
        few_links = chiplet_cost(parameters, 36, 2.0)
        many_links = chiplet_cost(parameters, 36, 6.0)
        assert many_links.chiplet_area_mm2 > few_links.chiplet_area_mm2

    def test_comparison_dictionary_keys(self):
        comparison = compare_monolithic_vs_chiplets(CostModelParameters(), 16, 4.0)
        assert {"monolithic_total_cost", "chiplet_total_cost", "cost_ratio"} <= set(
            comparison
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModelParameters(total_logic_area_mm2=-1.0)
        with pytest.raises(ValueError):
            chiplet_cost(CostModelParameters(), 0, 1.0)
