"""CLI coverage of the ``workload`` subcommand and the figure ignored-flag paths."""

from __future__ import annotations

import pytest

from repro.cli import main

WORKLOAD_ARGS = [
    "workload", "--kind", "dnn-pipeline", "--chiplets", "7",
    "--arrangement", "hexamesh", "--mapper", "partition",
    "--cycles", "100",
]


class TestWorkloadCommand:
    def test_single_point_reports_application_metrics(self, capsys):
        assert main(WORKLOAD_ARGS) == 0
        out = capsys.readouterr().out
        assert "weighted hops" in out
        assert "makespan proxy [cyc]" in out
        assert "dnn-pipeline" in out
        assert "partition" in out

    def test_engines_produce_identical_tables(self, capsys):
        assert main(WORKLOAD_ARGS + ["--engine", "active"]) == 0
        active = capsys.readouterr().out
        assert main(WORKLOAD_ARGS + ["--engine", "legacy"]) == 0
        legacy = capsys.readouterr().out
        assert active == legacy

    def test_jobs_produce_identical_tables(self, capsys):
        grid_args = [
            "workload", "--kind", "dnn-pipeline,all-reduce", "--chiplets", "7,9",
            "--arrangement", "grid", "--mapper", "round-robin",
            "--cycles", "100",
        ]
        assert main(grid_args + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(grid_args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_csv_output(self, tmp_path, capsys):
        path = tmp_path / "workloads.csv"
        assert main(WORKLOAD_ARGS + ["--output", str(path)]) == 0
        capsys.readouterr()
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("arrangement,chiplets,workload,mapper")
        assert len(lines) == 2

    @pytest.mark.parametrize(
        "flag,value",
        [("--kind", "matmul"), ("--mapper", "annealing"), ("--arrangement", "torus")],
    )
    def test_fails_fast_on_typos(self, flag, value, capsys):
        args = list(WORKLOAD_ARGS)
        args[args.index(flag) + 1] = value
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_too_small_tasks_fails_fast(self, capsys):
        args = [
            "workload", "--kind", "fork-join", "--chiplets", "7",
            "--arrangement", "grid", "--mapper", "round-robin",
            "--tasks", "2", "--cycles", "100",
        ]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "at least 3 tasks" in err

    def test_all_shorthand_for_mappers(self, capsys):
        args = [
            "workload", "--kind", "fork-join", "--chiplets", "7",
            "--arrangement", "grid", "--mapper", "all", "--cycles", "100",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        for mapper in ("greedy", "partition", "round-robin"):
            assert mapper in out


class TestFigureIgnoredFlags:
    def test_figure7_analytical_warns_about_simulation_flags(self, capsys):
        assert main(["figure", "7", "--max-chiplets", "4", "--jobs", "3"]) == 0
        err = capsys.readouterr().err
        assert "warning" in err
        assert "--jobs" in err
        assert "analytical" in err

    def test_figure7_analytical_stays_silent_with_defaults(self, capsys):
        assert main(["figure", "7", "--max-chiplets", "4"]) == 0
        assert capsys.readouterr().err == ""

    def test_figure6_warning_still_fires(self, capsys):
        assert main(["figure", "6", "--max-chiplets", "4", "--jobs", "3"]) == 0
        err = capsys.readouterr().err
        assert "figure 6 is always analytical" in err
