"""Unit tests for repro.geometry.bumps."""

import pytest

from repro.geometry.bumps import (
    BumpGrid,
    bump_positions_in_rect,
    bump_positions_in_sector,
    max_bump_count,
)
from repro.geometry.primitives import Rect
from repro.geometry.sectors import BumpSector, SectorRole


class TestMaxBumpCount:
    def test_exact_fit(self):
        assert max_bump_count(1.0, 0.1) == 100

    def test_rounds_down(self):
        assert max_bump_count(1.0, 0.15) == 44

    def test_paper_link_area_example(self):
        # Grid layout at N=100 chiplets: A_B = 1.2 mm², P_B = 0.15 mm -> 53 wires.
        assert max_bump_count(1.2, 0.15) == 53

    def test_zero_area(self):
        assert max_bump_count(0.0, 0.1) == 0

    def test_rejects_negative_area(self):
        with pytest.raises(ValueError):
            max_bump_count(-1.0, 0.1)

    def test_rejects_non_positive_pitch(self):
        with pytest.raises(ValueError):
            max_bump_count(1.0, 0.0)


class TestBumpPositionsInRect:
    def test_counts_complete_cells_only(self):
        positions = bump_positions_in_rect(Rect(0, 0, 1.0, 1.0), 0.3)
        assert len(positions) == 9

    def test_positions_are_inside_rect(self):
        rect = Rect(2, 3, 1.0, 0.5)
        for point in bump_positions_in_rect(rect, 0.2):
            assert rect.contains_point(point)

    def test_never_exceeds_closed_form_count(self):
        rect = Rect(0, 0, 1.37, 0.83)
        positions = bump_positions_in_rect(rect, 0.15)
        assert len(positions) <= max_bump_count(rect.area, 0.15)

    def test_pitch_spacing(self):
        positions = bump_positions_in_rect(Rect(0, 0, 1.0, 1.0), 0.5)
        xs = sorted({p.x for p in positions})
        assert xs == pytest.approx([0.25, 0.75])


class TestBumpPositionsInSector:
    def test_triangle_sector_filters_outside_points(self):
        from repro.geometry.primitives import Point

        sector = BumpSector(
            SectorRole.LINK, (Point(0, 0), Point(1, 0), Point(0, 1)), "west"
        )
        positions = bump_positions_in_sector(sector, 0.2)
        assert positions  # some bumps fit
        for point in positions:
            assert sector.contains_point(point)

    def test_rect_sector_equivalent_to_rect_generator(self):
        rect = Rect(0, 0, 1.0, 0.6)
        sector = BumpSector(SectorRole.LINK, rect.corner_points(), "east")
        assert len(bump_positions_in_sector(sector, 0.2)) == len(
            bump_positions_in_rect(rect, 0.2)
        )


class TestBumpGrid:
    def test_for_rect(self):
        grid = BumpGrid.for_rect(Rect(0, 0, 1, 1), 0.25)
        assert grid.count == 16
        assert grid.pitch == pytest.approx(0.25)

    def test_max_distance_to_edge(self):
        chiplet = Rect(0, 0, 2, 2)
        grid = BumpGrid.for_rect(Rect(0.5, 0.5, 1, 1), 0.5)
        assert grid.max_distance_to_edge(chiplet) <= 1.0

    def test_empty_grid_distance_raises(self):
        grid = BumpGrid(positions=(), pitch=0.1)
        with pytest.raises(ValueError):
            grid.max_distance_to_edge(Rect(0, 0, 1, 1))

    def test_invalid_pitch_rejected(self):
        with pytest.raises(ValueError):
            BumpGrid(positions=(), pitch=0.0)
