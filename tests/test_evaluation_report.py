"""Tests for the Markdown report generator."""

import pytest

from repro.evaluation.report import generate_markdown_report, write_markdown_report
from repro.evaluation.series import DataSeries, ExperimentResult


def _fake_results():
    figure = ExperimentResult(
        experiment_id="FIG6a",
        title="Network diameter",
        x_label="number of chiplets",
        y_label="diameter",
        metadata={"mode": "analytical"},
    )
    series = DataSeries(name="grid (regular)")
    series.add(4, 2)
    series.add(9, 4)
    figure.series.append(series)

    headline = ExperimentResult(
        experiment_id="HEADLINE",
        title="Headline claims",
        x_label="claim",
        y_label="percent",
        metadata={
            "claims": {
                "diameter_reduction_percent": 42.3,
                "bisection_improvement_percent": 130.9,
                "latency_reduction_percent": 20.1,
                "throughput_improvement_percent": 22.3,
            }
        },
    )
    return {"FIG6a": figure, "HEADLINE": headline}


class TestGenerateMarkdownReport:
    def test_contains_all_sections(self):
        report = generate_markdown_report(_fake_results())
        assert report.startswith("# HexaMesh reproduction report")
        assert "## Headline claims" in report
        assert "## FIG6a" in report
        assert "grid (regular)" in report

    def test_headline_table_compares_against_paper(self):
        report = generate_markdown_report(_fake_results())
        assert "42.3" in report  # reproduced value
        assert "42.0" in report  # paper value

    def test_engine_metadata_rendered(self):
        report = generate_markdown_report(_fake_results())
        assert "_Engine: analytical_" in report

    def test_custom_title(self):
        report = generate_markdown_report(_fake_results(), title="Custom title")
        assert report.splitlines()[0] == "# Custom title"

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            generate_markdown_report({})

    def test_missing_claims_rendered_as_na(self):
        results = _fake_results()
        results["HEADLINE"].metadata["claims"] = {}
        report = generate_markdown_report(results)
        assert "n/a" in report

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "report.md"
        write_markdown_report(_fake_results(), str(path))
        assert path.read_text().startswith("# HexaMesh")

    def test_real_runner_output_renders(self):
        """Smoke test against the actual experiment runner (tiny range)."""
        from repro.evaluation.runner import run_all_experiments

        results = run_all_experiments(max_chiplets=6)
        report = generate_markdown_report(results)
        for experiment_id in ("FIG6a", "FIG6b", "FIG7a", "FIG7d", "TAB1"):
            assert f"## {experiment_id}" in report
