"""Tests for the design-space explorer and comparison reports."""

import pytest

from repro.core.design import ChipletDesign
from repro.core.explorer import DesignSpaceExplorer
from repro.core.report import DesignComparison, compare_designs
from repro.noc.config import SimulationConfig


class TestExplorer:
    @pytest.fixture(scope="class")
    def explorer(self):
        explorer = DesignSpaceExplorer()
        explorer.evaluate([16, 19, 25])
        return explorer

    def test_records_count(self, explorer):
        # 3 kinds x 3 chiplet counts.
        assert len(explorer.records) == 9

    def test_rank_by_latency_prefers_hexamesh(self, explorer):
        best = explorer.best("latency")
        assert best.design.kind.value == "hexamesh"

    def test_rank_by_diameter(self, explorer):
        ranked = explorer.rank("diameter")
        assert ranked[0].diameter <= ranked[-1].diameter

    def test_best_for_count(self, explorer):
        best = explorer.best_for_count(25, "bisection")
        assert best.design.num_chiplets == 25
        assert best.design.kind.value in ("hexamesh", "brickwall")

    def test_best_for_unknown_count_raises(self, explorer):
        with pytest.raises(ValueError):
            explorer.best_for_count(999)

    def test_unknown_objective_rejected(self, explorer):
        with pytest.raises(ValueError):
            explorer.rank("beauty")

    def test_pareto_front_is_non_dominated(self, explorer):
        front = explorer.pareto_front()
        assert front
        for record in front:
            for other in explorer.records:
                strictly_better = (
                    other.zero_load_latency_cycles < record.zero_load_latency_cycles
                    and other.saturation_throughput_tbps > record.saturation_throughput_tbps
                )
                assert not strictly_better

    def test_empty_explorer_best_raises(self):
        explorer = DesignSpaceExplorer()
        with pytest.raises(ValueError):
            explorer.best()

    def test_requires_at_least_one_kind(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(kinds=[])


class TestExplorerSpotCheck:
    def test_spot_check_simulates_a_record_with_any_engine(self):
        explorer = DesignSpaceExplorer(kinds=["hexamesh"])
        (record,) = explorer.evaluate([7])
        config = SimulationConfig(
            warmup_cycles=40, measurement_cycles=80, drain_cycles=200
        )
        legacy = explorer.spot_check(record, config=config, engine="legacy")
        vectorized = explorer.spot_check(record, config=config, engine="vectorized")
        # The cycle-accurate spot check is engine-agnostic (bit-identical)
        # and actually simulated the record's design.
        assert legacy == vectorized
        assert legacy.num_routers == 7
        assert legacy.measured_packets_ejected > 0


class TestDesignComparison:
    def test_hexamesh_vs_grid_at_91(self):
        comparison = compare_designs(
            ChipletDesign.create("hexamesh", 91),
            ChipletDesign.create("grid", 91),
        )
        assert comparison.diameter_reduction_percent > 25.0
        assert comparison.bisection_improvement_percent > 50.0
        assert comparison.latency_reduction_percent > 10.0

    def test_self_comparison_is_neutral(self):
        design = ChipletDesign.create("grid", 36)
        comparison = DesignComparison(candidate=design, baseline=design)
        assert comparison.diameter_reduction_percent == pytest.approx(0.0)
        assert comparison.throughput_improvement_percent == pytest.approx(0.0)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            compare_designs(
                ChipletDesign.create("hexamesh", 37),
                ChipletDesign.create("grid", 36),
            )

    def test_as_dict_and_render(self):
        comparison = compare_designs(
            ChipletDesign.create("hexamesh", 19),
            ChipletDesign.create("grid", 19),
        )
        data = comparison.as_dict()
        assert set(data) == {
            "diameter_reduction_percent",
            "bisection_improvement_percent",
            "latency_reduction_percent",
            "throughput_improvement_percent",
        }
        text = comparison.render()
        assert "HM-19" in text
        assert "diameter" in text
