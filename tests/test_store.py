"""The content-addressed result store: layout, safety, migration, verify.

Edge-case coverage the ISSUE calls out explicitly: corrupt-entry
quarantine, version-mismatch rejection, legacy-layout migration
round-trips, interrupted-write recovery, and the generation guard that
makes the orphan sweep safe against pid reuse.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import asdict, replace

import pytest

from repro.core.parallel import ParallelSweepRunner, SweepCandidate
from repro.noc.config import SimulationConfig, config_identity_dict
from repro.store import (
    KEY_SCHEMA,
    STORE_SCHEMA,
    ResultStore,
    StoreSchemaError,
    candidate_from_key_dict,
    is_result_key,
    result_key,
    sample_keys,
    verify_entry,
    verify_store,
)

FAST_CONFIG = SimulationConfig(warmup_cycles=40, measurement_cycles=80, drain_cycles=160)

KEY_A = "a" * 64
KEY_B = "b" * 64


def _entry_payload(key, *, schema=STORE_SCHEMA, **overrides):
    payload = {
        "schema": schema,
        "key": key,
        "candidate": {"kind": "hexamesh"},
        "result": {"value": 1},
        "manifest": None,
    }
    payload.update(overrides)
    return payload


def _write_entry_file(store, key, payload):
    path = store.entry_path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


class TestResultKey:
    def test_matches_the_legacy_flat_cache_computation(self):
        candidate = {"kind": "hexamesh", "num_chiplets": 16}
        config = asdict(FAST_CONFIG)
        payload = {"schema": KEY_SCHEMA, "candidate": candidate, "config": config}
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert result_key(candidate, config) == expected

    def test_key_shape(self):
        key = result_key({"kind": "grid"}, {})
        assert is_result_key(key)
        assert not is_result_key("nope")
        assert not is_result_key(KEY_A.upper())


class TestStoreBasics:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.load(KEY_A) is None
        path = store.store(KEY_A, candidate={"kind": "grid"}, result={"v": 2})
        assert path == store.entry_path(KEY_A)
        assert os.sep + "objects" + os.sep + KEY_A[:2] + os.sep in path
        entry = store.load(KEY_A)
        assert entry.candidate == {"kind": "grid"}
        assert entry.result == {"v": 2}
        assert entry.manifest is None
        assert (store.counters.hits, store.counters.misses, store.counters.writes) == (1, 1, 1)
        assert store.counters.hit_ratio == 0.5

    def test_contains_keys_and_iter(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.store(KEY_B, candidate={}, result={})
        store.store(KEY_A, candidate={}, result={})
        assert store.contains(KEY_A) and not store.contains("c" * 64)
        assert store.keys() == [KEY_A, KEY_B]
        assert [entry.key for entry in store.iter_entries()] == [KEY_A, KEY_B]

    def test_generation_increments_per_open(self, tmp_path):
        first = ResultStore(str(tmp_path))
        second = ResultStore(str(tmp_path))
        assert (first.generation, second.generation) == (1, 2)
        meta = json.loads((tmp_path / "store.json").read_text())
        assert meta == {"schema": STORE_SCHEMA, "generation": 2}

    def test_same_key_writers_converge(self, tmp_path):
        # Two store instances (stand-ins for two processes) publish the
        # same key; whichever replace lands last, the entry is complete
        # and identical — deterministic seeds make the payloads equal.
        writer_a = ResultStore(str(tmp_path))
        writer_b = ResultStore(str(tmp_path))
        writer_a.store(KEY_A, candidate={"kind": "grid"}, result={"v": 3})
        writer_b.store(KEY_A, candidate={"kind": "grid"}, result={"v": 3})
        entry = ResultStore(str(tmp_path)).get(KEY_A)
        assert entry.result == {"v": 3}
        assert ResultStore(str(tmp_path)).stats().entries == 1


class TestCorruptEntryQuarantine:
    def test_unparseable_entry_is_quarantined_and_missed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.entry_path(KEY_A)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.load(KEY_A) is None
        assert not os.path.exists(path)
        quarantined = os.listdir(tmp_path / "quarantine")
        assert quarantined == [f"{KEY_A}.json"]
        assert store.counters.quarantined == 1

    def test_wrong_key_entry_is_quarantined(self, tmp_path):
        store = ResultStore(str(tmp_path))
        _write_entry_file(store, KEY_A, _entry_payload(KEY_B))
        assert store.load(KEY_A) is None
        assert not store.contains(KEY_A)
        assert len(os.listdir(tmp_path / "quarantine")) == 1

    def test_quarantine_never_overwrites(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for _ in range(2):
            _write_entry_file(store, KEY_A, _entry_payload(KEY_A, candidate="bad"))
            assert store.load(KEY_A) is None
        assert sorted(os.listdir(tmp_path / "quarantine")) == [
            f"{KEY_A}.json",
            f"{KEY_A}.json.1",
        ]

    def test_gc_purges_quarantine(self, tmp_path):
        store = ResultStore(str(tmp_path))
        _write_entry_file(store, KEY_A, _entry_payload(KEY_A, candidate="bad"))
        store.load(KEY_A)
        kept = store.gc(purge_quarantine=False)
        assert kept.removed_quarantined == 0
        purged = store.gc()
        assert purged.removed_quarantined == 1
        assert purged.freed_bytes > 0
        assert not (tmp_path / "quarantine").exists()


class TestVersionMismatch:
    def test_newer_store_schema_is_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text(
            json.dumps({"schema": STORE_SCHEMA + 1, "generation": 5})
        )
        with pytest.raises(StoreSchemaError, match="newer than"):
            ResultStore(str(tmp_path))

    def test_non_integer_schema_is_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({"schema": "two"}))
        with pytest.raises(StoreSchemaError):
            ResultStore(str(tmp_path))

    def test_unreadable_meta_is_rejected(self, tmp_path):
        (tmp_path / "store.json").write_text("{broken")
        with pytest.raises(StoreSchemaError, match="unreadable"):
            ResultStore(str(tmp_path))

    def test_other_entry_schema_is_a_miss_not_a_quarantine(self, tmp_path):
        # A cleanly versioned entry from a different (future) entry schema
        # is rejected as a miss but left in place: the caller recomputes
        # and atomically overwrites it, nothing is destroyed.
        store = ResultStore(str(tmp_path))
        path = _write_entry_file(
            store, KEY_A, _entry_payload(KEY_A, schema=STORE_SCHEMA + 1)
        )
        assert store.load(KEY_A) is None
        assert os.path.exists(path)
        assert not (tmp_path / "quarantine").exists()


class TestLegacyMigration:
    def _flat_entry(self, root, key, *, with_manifest=True, schema=1):
        (root / f"{key}.json").write_text(
            json.dumps(
                {"schema": schema, "candidate": {"kind": "grid"}, "result": {"v": 7}}
            )
        )
        if with_manifest:
            (root / f"{key}.manifest.json").write_text(json.dumps({"engine": "active"}))

    def test_flat_layout_migrates_once_with_manifests_folded_in(self, tmp_path):
        self._flat_entry(tmp_path, KEY_A)
        self._flat_entry(tmp_path, KEY_B, with_manifest=False)
        store = ResultStore(str(tmp_path))
        assert store.preexisting
        assert store.migrated == 2
        entry = store.get(KEY_A)
        assert entry.result == {"v": 7}
        assert entry.manifest == {"engine": "active"}
        assert store.get(KEY_B).manifest is None
        # Flat files (manifest sidecars included) are gone; the second
        # open sees a current-schema store and migrates nothing.
        assert not any(name.endswith(".json") for name in os.listdir(tmp_path) if name != "store.json")
        assert ResultStore(str(tmp_path)).migrated == 0

    def test_migration_round_trip_preserves_cache_hits(self, tmp_path):
        # Results computed under the flat layout must be cache hits after
        # migration: same keys, same payloads.
        cache = tmp_path / "cache"
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache)
        grid = ParallelSweepRunner.grid(["hexamesh"], [7], [0.05, 0.3], ["uniform"])
        fresh = runner.run(grid)
        # Demote the store to the flat legacy layout by hand.
        store = runner.store
        for key in store.keys():
            entry = store.get(key)
            (cache / f"{key}.json").write_text(
                json.dumps(
                    {"schema": 1, "candidate": entry.candidate, "result": entry.result}
                )
            )
            (cache / f"{key}.manifest.json").write_text(json.dumps(entry.manifest))
            os.unlink(store.entry_path(key))
        os.unlink(cache / "store.json")
        migrated_runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=cache)
        assert migrated_runner.store.migrated == len(grid)
        warm = migrated_runner.run(grid)
        assert all(record.from_cache for record in warm)
        assert [r.result for r in warm] == [r.result for r in fresh]

    def test_corrupt_flat_entry_is_quarantined_not_migrated(self, tmp_path):
        (tmp_path / f"{KEY_A}.json").write_text("{broken")
        self._flat_entry(tmp_path, KEY_B)
        store = ResultStore(str(tmp_path))
        assert store.migrated == 1
        assert store.get(KEY_B) is not None
        assert len(os.listdir(tmp_path / "quarantine")) == 1

    def test_dead_legacy_writer_tmp_is_cleaned(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", ""])
        probe.wait()
        stale = tmp_path / f"{KEY_A}.json.tmp.{probe.pid}"
        stale.write_text("{}")
        self._flat_entry(tmp_path, KEY_B)
        ResultStore(str(tmp_path))
        assert not stale.exists()


class TestInterruptedWriteRecovery:
    def test_partial_tmp_of_dead_writer_is_swept_on_open(self, tmp_path):
        # A writer killed mid-write strands a partial temp file beside its
        # target.  The next open sweeps it, and the key reads as a plain
        # miss — the store never surfaces partial bytes.
        store = ResultStore(str(tmp_path))
        store.store(KEY_A, candidate={}, result={"v": 1})
        probe = subprocess.Popen([sys.executable, "-c", ""])
        probe.wait()
        shard = os.path.dirname(store.entry_path(KEY_B))
        os.makedirs(shard, exist_ok=True)
        partial = os.path.join(shard, f"{KEY_B}.json.tmp.g1.p{probe.pid}")
        with open(partial, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "key": "')  # cut mid-write
        reopened = ResultStore(str(tmp_path))
        assert not os.path.exists(partial)
        assert reopened.load(KEY_B) is None
        assert reopened.load(KEY_A).result == {"v": 1}

    def test_stats_reports_orphans_without_removing_them(self, tmp_path):
        store = ResultStore(str(tmp_path))
        shard = os.path.dirname(store.entry_path(KEY_A))
        os.makedirs(shard, exist_ok=True)
        tmp_name = os.path.join(shard, f"{KEY_A}.json.tmp.g{store.generation}.p1")
        with open(tmp_name, "w", encoding="utf-8") as handle:
            handle.write("{}")
        assert store.stats().orphan_tmp == 1
        assert os.path.exists(tmp_name)


class TestCandidateRoundTrip:
    CANDIDATES = [
        SweepCandidate(kind="hexamesh", num_chiplets=16, injection_rate=0.05),
        SweepCandidate(
            kind="grid",
            num_chiplets=9,
            injection_rate=0.1,
            traffic="neighbor",
            failed_links=((0, 1),),
            failed_routers=(4,),
        ),
        SweepCandidate(
            kind="hexamesh",
            num_chiplets=7,
            injection_rate=0.3,
            workload="dnn-pipeline",
            mapper="partition",
        ),
    ]

    def test_key_dict_inverts_exactly(self):
        for candidate in self.CANDIDATES:
            rebuilt = candidate_from_key_dict(candidate.key_dict())
            assert rebuilt.key_dict() == candidate.key_dict()

    def test_json_round_trip_inverts(self):
        # What verify actually sees: the key_dict after a JSON round trip
        # (tuples flattened to lists).
        for candidate in self.CANDIDATES:
            data = json.loads(json.dumps(candidate.key_dict()))
            rebuilt = candidate_from_key_dict(data)
            assert rebuilt.key_dict() == candidate.key_dict()


class TestVerify:
    def _populated(self, tmp_path):
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1, cache_dir=tmp_path)
        runner.run(ParallelSweepRunner.grid(["hexamesh"], [7], [0.05], ["uniform"]))
        return runner.store

    def test_verify_recomputes_bit_for_bit(self, tmp_path):
        store = self._populated(tmp_path)
        (outcome,) = verify_store(store, sample=1)
        assert outcome.ok, outcome.detail

    def test_verify_detects_a_tampered_result(self, tmp_path):
        store = self._populated(tmp_path)
        (key,) = store.keys()
        entry = store.get(key)
        tampered = dict(entry.result)
        tampered["accepted_flit_rate"] = 123.0
        store.store(key, candidate=entry.candidate, result=tampered, manifest=entry.manifest)
        (outcome,) = verify_store(store, sample=1)
        assert outcome.status == "mismatch"

    def test_verify_detects_a_forged_key(self, tmp_path):
        store = self._populated(tmp_path)
        (key,) = store.keys()
        entry = store.get(key)
        store.store(KEY_A, candidate=entry.candidate, result=entry.result, manifest=entry.manifest)
        forged = store.get(KEY_A)
        outcome = verify_entry(forged)
        assert outcome.status == "mismatch"
        assert "hash" in outcome.detail

    def test_entry_without_manifest_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.store(KEY_A, candidate={"kind": "grid"}, result={"v": 1})
        outcome = verify_entry(store.get(KEY_A))
        assert outcome.status == "skipped"

    def test_sample_keys_deterministic(self):
        keys = [f"{i:064x}" for i in range(10)]
        assert sample_keys(keys, 3) == sample_keys(list(reversed(keys)), 3)
        assert sample_keys(keys, 99) == sorted(keys)
        assert len(sample_keys(keys, 3)) == 3


class TestRunnerKeyCompatibility:
    def test_runner_cache_key_equals_result_key(self):
        # The runner keys on the config *identity* rendering, which omits
        # router_pipeline at its "single" default — that is exactly what
        # keeps every store entry written before the knob existed valid.
        runner = ParallelSweepRunner(FAST_CONFIG, jobs=1)
        candidate = SweepCandidate(kind="hexamesh", num_chiplets=16, injection_rate=0.05)
        config = replace(FAST_CONFIG, seed=runner.candidate_seed(candidate))
        assert runner.cache_key(candidate, config) == result_key(
            candidate.key_dict(), config_identity_dict(config)
        )
        assert "router_pipeline" not in config_identity_dict(config)

    def test_staged_pipeline_keys_distinctly(self):
        # A staged-pipeline run must never collide with the single-stage
        # cache entry of the same candidate.
        candidate = SweepCandidate(kind="hexamesh", num_chiplets=16, injection_rate=0.05)
        staged = replace(FAST_CONFIG, router_pipeline="staged")
        single_runner = ParallelSweepRunner(FAST_CONFIG, jobs=1)
        staged_runner = ParallelSweepRunner(staged, jobs=1)
        seed = single_runner.candidate_seed(candidate)
        assert single_runner.cache_key(
            candidate, replace(FAST_CONFIG, seed=seed)
        ) != staged_runner.cache_key(candidate, replace(staged, seed=seed))
