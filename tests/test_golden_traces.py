"""Golden-trace regression tests: committed fixtures lock engine outputs.

One fixed, fully specified scenario per arrangement kind — healthy and
with a deterministically sampled single-link fault — is committed as a
JSON fixture under ``tests/goldens/``: the complete simulation result
(latency summaries, throughput counters, packet accounting) plus the raw
per-packet latency histogram.  Every simulation mode (legacy, active-set,
vectorized, batched — the ``sim_mode`` fixture of ``tests/conftest.py``)
must reproduce each fixture **exactly**; any change to RNG consumption,
allocation order, routing, phase accounting or statistics shows up as a
diff against the goldens, not as a silent drift.

Updating after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens

regenerates the fixtures from the legacy reference engine (the suite then
re-asserts every other mode against the fresh files — so an update run
still proves cross-engine equivalence).  Commit the resulting diff and
explain it in the PR.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

import pytest

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import simulation_result_to_dict
from repro.noc.config import SimulationConfig, config_identity_dict
from repro.resilience import sample_survivable_faults

from sim_modes import simulate_noc

#: Schema of the golden files; bump on layout changes (forces regeneration).
GOLDEN_SCHEMA = 1

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

#: The pinned scenario configuration.  Never change these values casually:
#: every golden fixture embeds them, so a silent edit fails loudly.
GOLDEN_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=7
)
GOLDEN_RATE = 0.2
GOLDEN_TRAFFIC = "uniform"
GOLDEN_FAULT_SEED = 31


#: Pinned configuration of the backpressure edge golden: two-flit buffers
#: keep every VC occupied at the saturated injection rate, exercising the
#: escape-patience and credit-stall paths of all engines.
BACKPRESSURE_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=7,
    buffer_depth_flits=2,
)


@dataclass(frozen=True)
class GoldenScenario:
    kind: str
    count: int
    faulted: bool  # False = healthy, True = sampled failed links
    #: Edge-case knobs (defaults reproduce the classic scenario shape).
    label: str | None = None  # overrides the derived name suffix
    rate: float = GOLDEN_RATE
    config: SimulationConfig = GOLDEN_CONFIG
    link_faults: int = 1

    @property
    def name(self) -> str:
        suffix = self.label
        if suffix is None:
            suffix = "single-link" if self.faulted else "healthy"
        return f"{self.kind}{self.count}-{suffix}"

    @property
    def path(self) -> str:
        return os.path.join(GOLDEN_DIR, f"{self.name}.json")


SCENARIOS = tuple(
    GoldenScenario(kind, count, faulted)
    for kind, count in (
        ("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)
    )
    for faulted in (False, True)
)

#: Kernel edge cases, enrolled with the same fixtures and mode grid: the
#: minimum (2-router) topology, an empty generation schedule (zero
#: injection rate — the engines must still agree on every phase
#: boundary), all-VCs-occupied backpressure, and a doubly-degraded
#: topology.
EDGE_SCENARIOS = (
    GoldenScenario("grid", 2, False, label="two-router"),
    GoldenScenario("hexamesh", 7, False, label="zero-load", rate=0.0),
    GoldenScenario(
        "hexamesh", 7, False, label="backpressure",
        rate=1.0, config=BACKPRESSURE_CONFIG,
    ),
    GoldenScenario("hexamesh", 7, True, label="two-link-faults", link_faults=2),
)

#: The staged-pipeline configuration pinned by the staged goldens.
STAGED_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=7,
    router_pipeline="staged",
)

#: Staged-router fidelity mode (router_pipeline="staged"): its own golden
#: fixtures, enrolled in the full mode grid — healthy, faulted and
#: saturated-backpressure regimes.  The single-stage scenarios above are
#: untouched, which is what keeps the default model bit-stable while the
#: explicit RC/VA/SA pipeline locks its own behaviour.
STAGED_SCENARIOS = (
    GoldenScenario("hexamesh", 7, False, label="staged-healthy", config=STAGED_CONFIG),
    GoldenScenario("grid", 9, True, label="staged-single-link", config=STAGED_CONFIG),
    GoldenScenario(
        "hexamesh", 7, False, label="staged-backpressure",
        rate=1.0,
        config=SimulationConfig(
            warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=7,
            buffer_depth_flits=2, router_pipeline="staged",
        ),
    ),
)


def _scenario_faults(scenario: GoldenScenario, graph):
    if not scenario.faulted:
        return None
    return sample_survivable_faults(
        graph, num_link_faults=scenario.link_faults, seed=GOLDEN_FAULT_SEED
    )


def _nan_to_none(value):
    """Replace NaN floats with ``None``, recursively.

    Empty latency summaries (the zero-load edge golden) report NaN
    statistics; NaN never compares equal — not even to itself — and is
    not valid strict JSON, so the fixtures store ``null`` instead.
    """
    if isinstance(value, dict):
        return {key: _nan_to_none(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_nan_to_none(item) for item in value]
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def build_payload(scenario: GoldenScenario, mode: str) -> dict:
    """Run the scenario under ``mode`` and shape the comparable payload.

    Only JSON-native types (dicts, lists, scalars) appear — NaN included
    (mapped to ``null``) — so the payload compares exactly against a
    ``json.load`` of the committed fixture.
    """
    graph = make_arrangement(scenario.kind, scenario.count).graph
    faults = _scenario_faults(scenario, graph)
    network, result = simulate_noc(
        graph,
        scenario.config,
        injection_rate=scenario.rate,
        traffic=GOLDEN_TRAFFIC,
        faults=faults,
        mode=mode,
    )
    network.verify_flit_conservation()
    latencies = sorted(
        packet.latency
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    )
    histogram: dict[int, int] = {}
    for latency in latencies:
        histogram[latency] = histogram.get(latency, 0) + 1
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": scenario.kind,
        "count": scenario.count,
        "injection_rate": scenario.rate,
        "traffic": GOLDEN_TRAFFIC,
        # The identity rendering omits router_pipeline at its "single"
        # default, so every fixture committed before the knob existed
        # stays byte-valid; staged-pipeline fixtures embed the mode.
        "config": config_identity_dict(scenario.config),
        "faults": {
            "failed_links": [list(link) for link in faults.failed_links],
            "failed_routers": list(faults.failed_routers),
        } if faults is not None else None,
        "result": _nan_to_none(simulation_result_to_dict(result)),
        "latency_histogram": [
            [latency, count] for latency, count in sorted(histogram.items())
        ],
    }


@pytest.mark.parametrize(
    "scenario", SCENARIOS + EDGE_SCENARIOS + STAGED_SCENARIOS, ids=lambda s: s.name
)
def test_modes_reproduce_goldens(scenario, sim_mode, update_goldens):
    if update_goldens:
        golden = build_payload(scenario, "legacy")
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(scenario.path, "w", encoding="utf-8") as handle:
            json.dump(golden, handle, indent=2, sort_keys=True)
            handle.write("\n")
    assert os.path.exists(scenario.path), (
        f"golden fixture {scenario.path} is missing; generate it with "
        "pytest tests/test_golden_traces.py --update-goldens"
    )
    with open(scenario.path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    payload = build_payload(scenario, sim_mode)
    assert payload == golden, (
        f"{sim_mode} run of {scenario.name} diverged from the committed "
        "golden trace; if the change is intentional, regenerate with "
        "--update-goldens and commit the diff"
    )


def test_goldens_carry_traffic():
    """Every committed golden measured real traffic (no silent dead nets)."""
    for scenario in SCENARIOS:
        with open(scenario.path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert golden["schema"] == GOLDEN_SCHEMA
        assert golden["result"]["measured_packets_ejected"] > 0
        assert golden["latency_histogram"]
        total = sum(count for _, count in golden["latency_histogram"])
        assert total == golden["result"]["measured_packets_ejected"]
        if scenario.faulted:
            assert len(golden["faults"]["failed_links"]) == 1


def test_edge_goldens_have_expected_shape():
    """The edge fixtures cover exactly the regimes they are named after."""
    by_label = {}
    for scenario in EDGE_SCENARIOS:
        with open(scenario.path, "r", encoding="utf-8") as handle:
            by_label[scenario.label] = json.load(handle)
    # An empty generation schedule creates (and therefore ejects) nothing,
    # but the engines must still agree on every phase boundary.
    zero = by_label["zero-load"]
    assert zero["injection_rate"] == 0.0
    assert zero["result"]["measured_packets_ejected"] == 0
    assert zero["latency_histogram"] == []
    # The minimum topology and the saturated shallow-buffer point both
    # carry real measured traffic.
    assert by_label["two-router"]["result"]["measured_packets_ejected"] > 0
    backpressure = by_label["backpressure"]
    assert backpressure["config"]["buffer_depth_flits"] == 2
    assert backpressure["result"]["measured_packets_ejected"] > 0
    # The doubly-degraded topology really lost two links.
    assert len(by_label["two-link-faults"]["faults"]["failed_links"]) == 2


def test_staged_goldens_have_expected_shape():
    """The staged fixtures pin the mode and diverge from their single twins."""
    for scenario in STAGED_SCENARIOS:
        with open(scenario.path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert golden["config"]["router_pipeline"] == "staged"
        assert golden["result"]["measured_packets_ejected"] > 0
    # The explicit pipeline really changes timing: the staged healthy
    # hexamesh must not accidentally reproduce the single-stage fixture.
    with open(os.path.join(GOLDEN_DIR, "hexamesh7-staged-healthy.json")) as handle:
        staged = json.load(handle)
    with open(os.path.join(GOLDEN_DIR, "hexamesh7-healthy.json")) as handle:
        single = json.load(handle)
    assert staged["latency_histogram"] != single["latency_histogram"]
