"""Golden-trace regression tests: committed fixtures lock engine outputs.

One fixed, fully specified scenario per arrangement kind — healthy and
with a deterministically sampled single-link fault — is committed as a
JSON fixture under ``tests/goldens/``: the complete simulation result
(latency summaries, throughput counters, packet accounting) plus the raw
per-packet latency histogram.  Every simulation mode (legacy, active-set,
vectorized, batched — the ``sim_mode`` fixture of ``tests/conftest.py``)
must reproduce each fixture **exactly**; any change to RNG consumption,
allocation order, routing, phase accounting or statistics shows up as a
diff against the goldens, not as a silent drift.

Updating after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-goldens

regenerates the fixtures from the legacy reference engine (the suite then
re-asserts every other mode against the fresh files — so an update run
still proves cross-engine equivalence).  Commit the resulting diff and
explain it in the PR.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import pytest

from repro.arrangements.factory import make_arrangement
from repro.core.parallel import simulation_result_to_dict
from repro.noc.config import SimulationConfig
from repro.resilience import sample_survivable_faults

from sim_modes import simulate_noc

#: Schema of the golden files; bump on layout changes (forces regeneration).
GOLDEN_SCHEMA = 1

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

#: The pinned scenario configuration.  Never change these values casually:
#: every golden fixture embeds them, so a silent edit fails loudly.
GOLDEN_CONFIG = SimulationConfig(
    warmup_cycles=60, measurement_cycles=120, drain_cycles=300, seed=7
)
GOLDEN_RATE = 0.2
GOLDEN_TRAFFIC = "uniform"
GOLDEN_FAULT_SEED = 31


@dataclass(frozen=True)
class GoldenScenario:
    kind: str
    count: int
    faulted: bool  # False = healthy, True = one sampled failed link

    @property
    def name(self) -> str:
        suffix = "single-link" if self.faulted else "healthy"
        return f"{self.kind}{self.count}-{suffix}"

    @property
    def path(self) -> str:
        return os.path.join(GOLDEN_DIR, f"{self.name}.json")


SCENARIOS = tuple(
    GoldenScenario(kind, count, faulted)
    for kind, count in (
        ("grid", 9), ("brickwall", 9), ("honeycomb", 7), ("hexamesh", 7)
    )
    for faulted in (False, True)
)


def _scenario_faults(scenario: GoldenScenario, graph):
    if not scenario.faulted:
        return None
    return sample_survivable_faults(
        graph, num_link_faults=1, seed=GOLDEN_FAULT_SEED
    )


def build_payload(scenario: GoldenScenario, mode: str) -> dict:
    """Run the scenario under ``mode`` and shape the comparable payload.

    Only JSON-native types (dicts, lists, scalars) appear, so the payload
    compares exactly against a ``json.load`` of the committed fixture.
    """
    graph = make_arrangement(scenario.kind, scenario.count).graph
    faults = _scenario_faults(scenario, graph)
    network, result = simulate_noc(
        graph,
        GOLDEN_CONFIG,
        injection_rate=GOLDEN_RATE,
        traffic=GOLDEN_TRAFFIC,
        faults=faults,
        mode=mode,
    )
    network.verify_flit_conservation()
    latencies = sorted(
        packet.latency
        for endpoint in network.endpoints
        for packet in endpoint.ejected_packets
        if packet.measured
    )
    histogram: dict[int, int] = {}
    for latency in latencies:
        histogram[latency] = histogram.get(latency, 0) + 1
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": scenario.kind,
        "count": scenario.count,
        "injection_rate": GOLDEN_RATE,
        "traffic": GOLDEN_TRAFFIC,
        "config": asdict(GOLDEN_CONFIG),
        "faults": {
            "failed_links": [list(link) for link in faults.failed_links],
            "failed_routers": list(faults.failed_routers),
        } if faults is not None else None,
        "result": simulation_result_to_dict(result),
        "latency_histogram": [
            [latency, count] for latency, count in sorted(histogram.items())
        ],
    }


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_modes_reproduce_goldens(scenario, sim_mode, update_goldens):
    if update_goldens:
        golden = build_payload(scenario, "legacy")
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(scenario.path, "w", encoding="utf-8") as handle:
            json.dump(golden, handle, indent=2, sort_keys=True)
            handle.write("\n")
    assert os.path.exists(scenario.path), (
        f"golden fixture {scenario.path} is missing; generate it with "
        "pytest tests/test_golden_traces.py --update-goldens"
    )
    with open(scenario.path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    payload = build_payload(scenario, sim_mode)
    assert payload == golden, (
        f"{sim_mode} run of {scenario.name} diverged from the committed "
        "golden trace; if the change is intentional, regenerate with "
        "--update-goldens and commit the diff"
    )


def test_goldens_carry_traffic():
    """Every committed golden measured real traffic (no silent dead nets)."""
    for scenario in SCENARIOS:
        with open(scenario.path, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert golden["schema"] == GOLDEN_SCHEMA
        assert golden["result"]["measured_packets_ejected"] > 0
        assert golden["latency_histogram"]
        total = sum(count for _, count in golden["latency_histogram"])
        assert total == golden["result"]["measured_packets_ejected"]
        if scenario.faulted:
            assert len(golden["faults"]["failed_links"]) == 1
