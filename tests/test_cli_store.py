"""The ``hexamesh store`` sub-command: stats, ls, gc, migrate, verify."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.store import STORE_SCHEMA, ResultStore


@pytest.fixture()
def populated_store(tmp_path):
    """A store with two real sweep entries, built through the CLI itself."""
    store_dir = tmp_path / "store"
    code = main(
        [
            "sweep",
            "--kinds",
            "hexamesh",
            "--chiplets",
            "7",
            "--rates",
            "0.05,0.3",
            "--cycles",
            "60",
            "--cache-dir",
            str(store_dir),
            "--progress",
            "quiet",
            "--output",
            str(tmp_path / "sweep.csv"),
        ]
    )
    assert code == 0
    return store_dir


class TestStoreStats:
    def test_table_output(self, populated_store, capsys):
        assert main(["store", "stats", str(populated_store)]) == 0
        output = capsys.readouterr().out
        assert "entries" in output
        assert "quarantined" in output

    def test_json_output(self, populated_store, capsys):
        assert main(["store", "stats", str(populated_store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == STORE_SCHEMA
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0

    def test_missing_directory_fails(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "nope")]) == 2
        assert "no store directory" in capsys.readouterr().err

    def test_newer_schema_rejected(self, tmp_path, capsys):
        root = tmp_path / "future"
        root.mkdir()
        (root / "store.json").write_text(json.dumps({"schema": STORE_SCHEMA + 1}))
        assert main(["store", "stats", str(root)]) == 2
        assert "newer than" in capsys.readouterr().err


class TestStoreLs:
    def test_plain_and_long(self, populated_store, capsys):
        assert main(["store", "ls", str(populated_store)]) == 0
        keys = capsys.readouterr().out.split()
        assert len(keys) == 2 and all(len(key) == 64 for key in keys)
        assert main(["store", "ls", str(populated_store), "--long"]) == 0
        assert "hexamesh-7" in capsys.readouterr().out

    def test_limit(self, populated_store, capsys):
        assert main(["store", "ls", str(populated_store), "--limit", "1"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.split()) == 1
        assert "1 more" in captured.err


class TestStoreGcAndMigrate:
    def test_gc_reports_what_it_removed(self, populated_store, capsys):
        store = ResultStore(str(populated_store))
        (key,) = store.keys()[:1]
        with open(store.entry_path(key), "w", encoding="utf-8") as handle:
            handle.write("{broken")
        assert store.load(key) is None  # quarantines the corrupt entry
        assert main(["store", "gc", str(populated_store)]) == 0
        output = capsys.readouterr().out
        assert "1 quarantined entries" in output
        assert not (populated_store / "quarantine").exists()

    def test_migrate_flat_layout(self, populated_store, tmp_path, capsys):
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        store = ResultStore(str(populated_store))
        for key in store.keys():
            entry = store.get(key)
            (legacy / f"{key}.json").write_text(
                json.dumps(
                    {"schema": 1, "candidate": entry.candidate, "result": entry.result}
                )
            )
        assert main(["store", "migrate", str(legacy)]) == 0
        assert "migrated 2 legacy entries" in capsys.readouterr().out
        assert main(["store", "migrate", str(legacy)]) == 0
        assert "nothing to migrate" in capsys.readouterr().out


class TestStoreVerify:
    def test_verify_ok(self, populated_store, capsys):
        assert main(["store", "verify", str(populated_store), "--sample", "2"]) == 0
        output = capsys.readouterr().out
        assert "2 recomputed bit-for-bit" in output

    def test_verify_flags_tampering(self, populated_store, capsys):
        store = ResultStore(str(populated_store))
        (key,) = store.keys()[:1]
        entry = store.get(key)
        tampered = dict(entry.result)
        tampered["accepted_flit_rate"] = 99.0
        store.store(key, candidate=entry.candidate, result=tampered, manifest=entry.manifest)
        assert main(["store", "verify", str(populated_store), "--sample", "2"]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_verify_engine_override(self, populated_store, capsys):
        code = main(
            ["store", "verify", str(populated_store), "--sample", "1", "--engine", "vectorized"]
        )
        assert code == 0
        assert "(vectorized)" in capsys.readouterr().out
