"""Tests for the all-experiments runner."""

import os

import pytest

from repro.evaluation.runner import run_all_experiments


@pytest.fixture(scope="module")
def all_results(tmp_path_factory):
    """Run every experiment on a reduced chiplet-count range."""
    output_dir = tmp_path_factory.mktemp("experiments")
    return (
        run_all_experiments(max_chiplets=20, output_dir=str(output_dir)),
        output_dir,
    )


class TestRunAllExperiments:
    def test_all_experiment_ids_present(self, all_results):
        results, _ = all_results
        expected = {
            "FIG4",
            "FIG6a",
            "FIG6b",
            "TAB1",
            "FIG7a",
            "FIG7b",
            "FIG7c",
            "FIG7d",
            "HEADLINE",
        }
        assert expected <= set(results)

    def test_csv_files_written(self, all_results):
        results, output_dir = all_results
        for experiment_id in results:
            assert os.path.exists(os.path.join(str(output_dir), f"{experiment_id}.csv"))

    def test_headline_metadata(self, all_results):
        results, _ = all_results
        claims = results["HEADLINE"].metadata["claims"]
        assert claims["diameter_reduction_percent"] == pytest.approx(42.3, abs=0.2)
        assert claims["bisection_improvement_percent"] == pytest.approx(130.9, abs=0.2)

    def test_metadata_records_mode(self, all_results):
        results, _ = all_results
        assert results["FIG7a"].metadata["mode"] == "analytical"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            run_all_experiments(max_chiplets=5, mode="magic")
