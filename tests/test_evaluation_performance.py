"""Tests for the Figure 7 experiment runner and the headline claims."""

import pytest

from repro.arrangements.factory import make_arrangement
from repro.evaluation.headline import (
    HeadlineClaims,
    asymptotic_claims,
    average_improvements,
    compute_headline_claims,
)
from repro.evaluation.performance import (
    evaluate_arrangement_performance,
    run_figure7,
    run_link_bandwidth_table,
)
from repro.noc.config import SimulationConfig


@pytest.fixture(scope="module")
def figure7_small():
    """Analytical Figure 7 over a reduced chiplet-count range (fast)."""
    return run_figure7(range(2, 41), mode="analytical")


class TestEvaluateArrangementPerformance:
    def test_analytical_point_fields(self):
        point = evaluate_arrangement_performance(make_arrangement("hexamesh", 19))
        assert point.engine == "analytical"
        assert point.zero_load_latency_cycles > 0
        assert 0 < point.saturation_fraction <= 1.0
        assert point.link_bandwidth_gbps > 0
        assert point.saturation_throughput_tbps == pytest.approx(
            point.saturation_fraction * point.full_global_bandwidth_tbps
        )

    def test_channel_load_model_is_more_conservative(self):
        arrangement = make_arrangement("hexamesh", 37)
        bisection = evaluate_arrangement_performance(arrangement, throughput_model="bisection")
        channel = evaluate_arrangement_performance(arrangement, throughput_model="channel_load")
        assert channel.saturation_fraction <= bisection.saturation_fraction

    def test_simulation_engine_on_tiny_design(self):
        config = SimulationConfig(
            warmup_cycles=100, measurement_cycles=300, drain_cycles=0
        )
        point = evaluate_arrangement_performance(
            make_arrangement("grid", 4),
            engine="simulation",
            simulation_config=config,
        )
        assert point.engine == "simulation"
        assert point.zero_load_latency_cycles > 0

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            evaluate_arrangement_performance(make_arrangement("grid", 4), engine="magic")


class TestFigure7:
    def test_every_kind_and_count_present(self, figure7_small):
        assert figure7_small.chiplet_counts() == list(range(2, 41))
        for count in (5, 20, 37):
            for kind in ("grid", "brickwall", "hexamesh"):
                assert figure7_small.point(kind, count).num_chiplets == count

    def test_latency_trend_hexamesh_below_grid(self, figure7_small):
        for count in range(10, 41):
            assert figure7_small.normalized_latency_percent("hexamesh", count) < 100.0

    def test_latency_reduction_close_to_paper_for_large_designs(self, figure7_small):
        # The paper reports an almost 20 % reduction for N >= 10.
        values = [
            figure7_small.normalized_latency_percent("hexamesh", count)
            for count in range(10, 41)
        ]
        mean_reduction = 100.0 - sum(values) / len(values)
        assert 10.0 < mean_reduction < 30.0

    def test_throughput_trend_hexamesh_above_grid_on_average(self, figure7_small):
        values = [
            figure7_small.normalized_throughput_percent("hexamesh", count)
            for count in figure7_small.chiplet_counts()
        ]
        assert sum(values) / len(values) > 100.0

    def test_experiments_export(self, figure7_small):
        for result, expected_id in (
            (figure7_small.latency_experiment(), "FIG7a"),
            (figure7_small.throughput_experiment(), "FIG7b"),
            (figure7_small.normalized_latency_experiment(), "FIG7c"),
            (figure7_small.normalized_throughput_experiment(), "FIG7d"),
        ):
            assert result.experiment_id == expected_id
            assert result.series

    def test_metadata_records_mode_and_model(self, figure7_small):
        assert figure7_small.metadata["mode"] == "analytical"
        assert figure7_small.metadata["throughput_model"] == "bisection"

    def test_unknown_point_raises(self, figure7_small):
        with pytest.raises(KeyError):
            figure7_small.point("grid", 1000)

    def test_hybrid_mode_marks_simulated_points(self):
        config = SimulationConfig(
            warmup_cycles=100, measurement_cycles=200, drain_cycles=0
        )
        result = run_figure7(
            [4, 7],
            mode="hybrid",
            simulation_points=[4],
            simulation_config=config,
        )
        assert result.point("grid", 4).engine == "simulation"
        assert result.point("grid", 7).engine == "analytical"


class TestLinkBandwidthTable:
    def test_table_structure(self):
        table = run_link_bandwidth_table(chiplet_counts=(4, 16, 100))
        assert table.experiment_id == "TAB1"
        assert set(table.series_names()) == {"grid", "brickwall", "hexamesh"}

    def test_grid_values_match_paper_setting(self):
        table = run_link_bandwidth_table(chiplet_counts=(100,))
        grid = table.get_series("grid")
        assert grid.y_at(100) == pytest.approx(656.0)
        annotations = grid.points[0].annotations
        assert annotations["num_wires"] == 53
        assert annotations["num_data_wires"] == 41

    def test_grid_has_higher_per_link_bandwidth_than_hexamesh(self):
        table = run_link_bandwidth_table(chiplet_counts=(64,))
        assert table.get_series("grid").y_at(64) > table.get_series("hexamesh").y_at(64)


class TestHeadlineClaims:
    def test_asymptotic_claims_match_abstract(self):
        diameter_reduction, bisection_improvement = asymptotic_claims()
        assert diameter_reduction == pytest.approx(42.3, abs=0.2)
        assert bisection_improvement == pytest.approx(130.9, abs=0.2)

    def test_compute_headline_claims(self, figure7_small):
        claims = compute_headline_claims(figure7_small)
        assert isinstance(claims, HeadlineClaims)
        # Latency: the paper quotes a 19 % average reduction.
        assert 10.0 < claims.latency_reduction_percent < 30.0
        # Throughput: the paper quotes +34 %; the analytical engine lands in
        # the same direction with a comparable magnitude.
        assert claims.throughput_improvement_percent > 5.0
        assert claims.as_dict()["diameter_reduction_percent"] == pytest.approx(42.3, abs=0.2)

    def test_average_improvements_min_chiplets_filter(self, figure7_small):
        all_counts = average_improvements(figure7_small, min_chiplets=2)
        large_only = average_improvements(figure7_small, min_chiplets=10)
        assert all_counts != large_only
        with pytest.raises(ValueError):
            average_improvements(figure7_small, min_chiplets=1000)

    def test_paper_reference_constants(self):
        assert HeadlineClaims.PAPER_DIAMETER_REDUCTION == 42.0
        assert HeadlineClaims.PAPER_THROUGHPUT_IMPROVEMENT == 34.0
