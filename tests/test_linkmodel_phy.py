"""Unit tests for the PHY companion model."""

import pytest

from repro.linkmodel.phy import PhyModel, cycles_from_time, estimated_link_length_mm


class TestPhyModel:
    def test_default_link_latency_matches_paper(self):
        # 2 x 12 (PHY) + 3 (wire) = 27 cycles, the value used in Section VI-A.
        assert PhyModel().link_latency_cycles == 27

    def test_custom_latency_composition(self):
        model = PhyModel(latency_cycles=10, wire_latency_cycles=5)
        assert model.link_latency_cycles == 25

    def test_phy_area_per_chiplet(self):
        model = PhyModel(area_overhead_mm2=0.5)
        assert model.phy_area_per_chiplet_mm2(6) == pytest.approx(3.0)
        assert model.phy_area_per_chiplet_mm2(0) == pytest.approx(0.0)

    def test_phy_area_overhead_fraction(self):
        model = PhyModel(area_overhead_mm2=0.5)
        assert model.phy_area_overhead_fraction(4, 20.0) == pytest.approx(0.1)

    def test_negative_link_count_rejected(self):
        with pytest.raises(ValueError):
            PhyModel().phy_area_per_chiplet_mm2(-1)

    def test_link_energy(self):
        model = PhyModel(energy_per_bit_pj=1.0)
        # 1 Tb/s at 1 pJ/bit = 1 W.
        assert model.link_energy_watts(1e12) == pytest.approx(1.0)
        assert model.link_energy_watts(1e12, utilization=0.5) == pytest.approx(0.5)

    def test_link_energy_validates_utilization(self):
        with pytest.raises(ValueError):
            PhyModel().link_energy_watts(1e12, utilization=1.5)

    def test_max_link_length(self):
        model = PhyModel()
        assert model.max_link_length_mm(silicon_interposer=True) == pytest.approx(2.0)
        assert model.max_link_length_mm(silicon_interposer=False) == pytest.approx(4.0)

    def test_supports_link_length(self):
        model = PhyModel()
        assert model.supports_link_length(1.5, silicon_interposer=True)
        assert not model.supports_link_length(2.5, silicon_interposer=True)
        assert model.supports_link_length(3.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyModel(latency_cycles=-1)
        with pytest.raises(ValueError):
            PhyModel(energy_per_bit_pj=-0.1)


class TestHelpers:
    def test_estimated_link_length(self):
        assert estimated_link_length_mm(0.73) == pytest.approx(1.46)

    def test_paper_example_link_stays_below_interposer_limit(self):
        # The worked example (D_B = 0.73 mm) yields a ~1.46 mm link, below
        # the 2 mm silicon-interposer limit quoted in the paper.
        assert PhyModel().supports_link_length(
            estimated_link_length_mm(0.73), silicon_interposer=True
        )

    def test_cycles_from_time(self):
        assert cycles_from_time(1e-9, 1e9) == 1
        assert cycles_from_time(1.5e-9, 1e9) == 2
        assert cycles_from_time(0.0, 1e9) == 0

    def test_cycles_from_time_validation(self):
        with pytest.raises(ValueError):
            cycles_from_time(-1.0, 1e9)
        with pytest.raises(ValueError):
            cycles_from_time(1.0, 0.0)
