#!/usr/bin/env python3
"""Analyse a hand-drawn chiplet floorplan with the paper's methodology.

The arrangement generators cover the paper's four families, but the rest of
the pipeline (shared-edge adjacency, graph proxies, link model, simulation,
BookSim2 export, SVG rendering) works on *any* placement of rectangular
chiplets.  This example builds the small six-chiplet floorplan of Figure 3
by hand, extracts its graph, evaluates the proxies and writes an SVG top
view plus BookSim2 input files.

Run with:  python examples/custom_floorplan_analysis.py
"""

import os
import tempfile

from repro.arrangements.base import Arrangement, ArrangementKind, Regularity
from repro.core.design import ChipletDesign
from repro.geometry.adjacency import shared_edges
from repro.geometry.placement import ChipletPlacement, PlacedChiplet
from repro.geometry.primitives import Rect
from repro.graphs.model import ChipGraph
from repro.io.booksim_export import write_booksim_inputs
from repro.viz.ascii_art import ascii_placement
from repro.viz.svg import placement_svg, save_svg


def build_figure3_floorplan() -> ChipletPlacement:
    """The six-chiplet arrangement sketched in Figure 3 of the paper.

    Chiplets A-F become ids 0-5.  Chiplet shapes are not uniform here —
    which is exactly why this floorplan would violate the paper's
    constraints — but the analysis tooling handles it regardless.
    """
    placement = ChipletPlacement()
    rects = {
        0: Rect(0.0, 2.0, 2.0, 2.0),   # A: top-left
        1: Rect(2.0, 2.0, 3.0, 2.0),   # B: top-right, wide
        2: Rect(0.0, 0.0, 1.5, 2.0),   # C: bottom-left
        3: Rect(1.5, 0.0, 1.5, 2.0),   # D: bottom-middle
        4: Rect(3.0, 0.0, 2.0, 2.0),   # E: bottom-right
        5: Rect(5.0, 0.0, 1.0, 4.0),   # F: tall chiplet on the right edge
    }
    for chiplet_id, rect in rects.items():
        placement.add(PlacedChiplet(chiplet_id=chiplet_id, rect=rect))
    return placement


def main() -> None:
    placement = build_figure3_floorplan()

    print("ASCII top view of the floorplan:")
    print(ascii_placement(placement))

    # 1. Shared-edge adjacency (Section III-C): corners do not count.
    edges = shared_edges(placement)
    print("\nAdjacency extracted from shared edges (id_a, id_b, shared length in mm):")
    for edge in edges:
        print(f"  {edge[0]} - {edge[1]}   ({edge[2]:.2f} mm)")

    # 2. Wrap it into an Arrangement and evaluate it like any generated one.
    graph = ChipGraph(nodes=placement.chiplet_ids, edges=[(a, b) for a, b, _ in edges])
    arrangement = Arrangement(
        kind=ArrangementKind.GRID,  # closest family; used only for the bump layout
        regularity=Regularity.IRREGULAR,
        num_chiplets=len(placement),
        graph=graph,
        placement=placement,
        metadata={"source": "hand-drawn Figure 3 floorplan"},
    )
    design = ChipletDesign.from_arrangement(arrangement)
    print("\nEvaluation under the paper's methodology:")
    print(f"  diameter:              {design.diameter}")
    print(f"  bisection bandwidth:   {design.bisection_bandwidth:.0f} links")
    print(f"  avg neighbours:        {design.average_neighbors:.2f}")
    print(f"  zero-load latency:     {design.zero_load_latency():.1f} cycles")
    print(f"  link bandwidth:        {design.link_bandwidth_gbps:.0f} Gb/s")

    # 3. Export artefacts: SVG top view + BookSim2 inputs.
    output_dir = tempfile.mkdtemp(prefix="hexamesh_floorplan_")
    svg_path = os.path.join(output_dir, "floorplan.svg")
    save_svg(placement_svg(placement), svg_path)
    topology_path = os.path.join(output_dir, "floorplan.anynet")
    config_path = os.path.join(output_dir, "booksim.cfg")
    write_booksim_inputs(arrangement, topology_path, config_path)
    print(f"\nWrote: {svg_path}")
    print(f"       {topology_path}")
    print(f"       {config_path}")


if __name__ == "__main__":
    main()
