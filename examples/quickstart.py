#!/usr/bin/env python3
"""Quickstart: evaluate a HexaMesh design and compare it against the grid.

This example walks through the paper's methodology end to end for a single
design point:

1. generate the arrangement (HexaMesh with 37 chiplets, i.e. 3 rings),
2. read off the performance proxies (diameter, bisection bandwidth),
3. solve the chiplet shape and estimate the D2D link bandwidth,
4. predict zero-load latency and saturation throughput, and
5. compare everything against the 2D-grid baseline.

Run with:  python examples/quickstart.py
"""

from repro import ChipletDesign
from repro.core.report import compare_designs


def main() -> None:
    num_chiplets = 37

    hexamesh = ChipletDesign.create("hexamesh", num_chiplets)
    grid = ChipletDesign.create("grid", num_chiplets)

    print("=== HexaMesh design summary ===")
    for key, value in hexamesh.summary().items():
        if isinstance(value, float):
            value = round(value, 3)
        print(f"  {key:32s} {value}")

    print()
    print("=== HexaMesh vs. grid (same chiplet count) ===")
    comparison = compare_designs(hexamesh, grid)
    print(comparison.render())

    print()
    print("Relative improvements of the HexaMesh:")
    for name, value in comparison.as_dict().items():
        print(f"  {name:36s} {value:+7.1f} %")


if __name__ == "__main__":
    main()
