#!/usr/bin/env python3
"""Cost / performance trade-off: how many chiplets should the design use?

Section I of the paper argues that disaggregation improves yield and cost;
Section VII points to Chiplet Actuary as a cost model that "could be
applied together with our evaluation methodology".  This example does
exactly that: for a fixed 800 mm² of compute silicon it sweeps the chiplet
count, arranges the chiplets as a HexaMesh, and reports

* manufacturing cost per unit (yield model + packaging + amortised NRE),
* zero-load latency and saturation throughput of the inter-chiplet network,

so the knee of the cost-vs-performance curve becomes visible.

Run with:  python examples/cost_performance_tradeoff.py
"""

from repro import ChipletDesign
from repro.cost.manufacturing import CostModelParameters, chiplet_cost, monolithic_cost
from repro.evaluation.tables import format_table

#: Chiplet counts to evaluate (regular HexaMesh sizes plus a few irregular ones).
CHIPLET_COUNTS = (4, 7, 12, 19, 25, 37, 50, 61, 75, 91)


def main() -> None:
    cost_parameters = CostModelParameters(defect_density_per_cm2=0.25)
    monolithic = monolithic_cost(cost_parameters)

    rows = []
    for count in CHIPLET_COUNTS:
        design = ChipletDesign.create("hexamesh", count)
        links_per_chiplet = design.average_neighbors
        cost = chiplet_cost(cost_parameters, count, links_per_chiplet)
        rows.append(
            [
                count,
                design.regularity.value,
                cost.chiplet_yield,
                cost.total_cost / monolithic.total_cost,
                design.zero_load_latency(),
                design.saturation_throughput_tbps(),
            ]
        )

    print(
        f"Monolithic baseline: yield {monolithic.die_yield:.2f}, "
        f"cost {monolithic.total_cost:.0f} per unit (normalised to 1.00 below)\n"
    )
    print("HexaMesh designs (800 mm² of compute silicon, defect density 0.25 /cm²):")
    print(
        format_table(
            [
                "chiplets",
                "regularity",
                "chiplet yield",
                "cost vs monolithic",
                "latency [cyc]",
                "throughput [Tb/s]",
            ],
            rows,
        )
    )

    cheapest = min(rows, key=lambda row: row[3])
    print(
        f"\nCheapest design: {cheapest[0]} chiplets at {cheapest[3]:.2f}x the monolithic cost."
    )
    print(
        "More chiplets improve yield and (up to a point) throughput, but add packaging"
        "\nand PHY overhead and increase network latency — the sweet spot sits where the"
        "\ncost curve flattens while the latency is still acceptable for the workload."
    )


if __name__ == "__main__":
    main()
