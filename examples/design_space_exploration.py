#!/usr/bin/env python3
"""Design-space exploration: pick an arrangement for a many-chiplet product.

The paper's motivation is a product in the spirit of Tesla's Dojo training
tile (25 chiplets, arranged by hand as a 2D grid) scaled to "tens or
hundreds" of chiplets, where hand optimisation is no longer feasible.  This
example uses the :class:`DesignSpaceExplorer` to answer the question a chip
architect would actually ask:

    "I want to integrate roughly 20-40 compute chiplets on one package —
     which arrangement family and which exact chiplet count should I pick?"

Run with:  python examples/design_space_exploration.py
"""

from repro import DesignSpaceExplorer
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig


def main() -> None:
    explorer = DesignSpaceExplorer(kinds=("grid", "brickwall", "hexamesh"))
    candidate_counts = range(20, 41)
    explorer.evaluate(candidate_counts)

    print(f"Evaluated {len(explorer.records)} candidate designs "
          f"({len(list(candidate_counts))} chiplet counts x 3 arrangement families).\n")

    # 1. Best designs for each objective.
    for objective in ("latency", "throughput", "diameter", "bisection"):
        best = explorer.best(objective)
        print(
            f"Best by {objective:10s}: {best.label:22s} "
            f"latency={best.zero_load_latency_cycles:6.1f} cyc, "
            f"throughput={best.saturation_throughput_tbps:5.1f} Tb/s, "
            f"diameter={best.diameter}, bisection={best.bisection_bandwidth:.0f} links"
        )

    # 2. The latency/throughput Pareto front.
    print("\nPareto front (zero-load latency vs. saturation throughput):")
    rows = []
    for record in explorer.pareto_front():
        rows.append(
            [
                record.label,
                record.design.num_chiplets,
                record.zero_load_latency_cycles,
                record.saturation_throughput_tbps,
                record.diameter,
            ]
        )
    print(
        format_table(
            ["design", "chiplets", "latency [cyc]", "throughput [Tb/s]", "diameter"], rows
        )
    )

    # 3. A Dojo-style question: exactly 25 chiplets.
    print("\nBest arrangement for exactly 25 chiplets (by zero-load latency):")
    best_25 = explorer.best_for_count(25, "latency")
    print(f"  {best_25.label}: {best_25.zero_load_latency_cycles:.1f} cycles, "
          f"{best_25.saturation_throughput_tbps:.1f} Tb/s")
    grid_25 = next(
        record
        for record in explorer.records
        if record.design.num_chiplets == 25 and record.design.kind.value == "grid"
    )
    latency_gain = 100.0 * (1 - best_25.zero_load_latency_cycles / grid_25.zero_load_latency_cycles)
    print(f"  ... {latency_gain:.1f} % lower latency than the 5x5 grid Dojo-style baseline.")

    # 4. Confirm the winner cycle-accurately: a batched injection sweep
    # evaluates the whole low-load curve over one shared topology /
    # routing / engine build (bit-identical to per-point simulation).
    print("\nCycle-accurate spot-check curve of the 25-chiplet winner (batched):")
    config = SimulationConfig(
        warmup_cycles=150, measurement_cycles=300, drain_cycles=450
    )
    curve = explorer.spot_check(
        best_25, rates=(0.02, 0.05, 0.1), config=config, batch=True
    )
    for rate, result in zip(curve.rates, curve.results):
        print(
            f"  rate {rate:4.2f}: {result.packet_latency.mean:6.1f} cycles mean, "
            f"{result.accepted_flit_rate:.3f} accepted flits/cycle/EP"
        )


if __name__ == "__main__":
    main()
