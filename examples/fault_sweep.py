#!/usr/bin/env python3
"""Fault injection and resilience: degradation curves under failed links/routers.

This example walks the resilience subsystem end to end:

1. derive per-component failure probabilities from the manufacturing
   yield models (die yield x test coverage -> dead routers, bond yield
   -> dead links),
2. draw a deterministic yield-sampled fault set and simulate the
   degraded topology — all three cycle-loop engines are bit-identical on
   it,
3. run a small resilience sweep (latency / throughput vs. number of
   failed links) and compare how gracefully the grid, brickwall and
   HexaMesh arrangements degrade.

Run with:  PYTHONPATH=src python examples/fault_sweep.py
"""

from repro.arrangements.factory import make_arrangement
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator
from repro.resilience import (
    fault_probabilities_from_yield,
    run_resilience_sweep,
    sample_fault_set,
)

CONFIG = SimulationConfig(
    warmup_cycles=200, measurement_cycles=400, drain_cycles=800
)


def main() -> None:
    print("=== Yield-coupled fault probabilities ===")
    # A 19-chiplet package splitting ~800 mm^2 of logic: ~42 mm^2 dies.
    probabilities = fault_probabilities_from_yield(
        chiplet_area_mm2=42.0, defect_density_per_cm2=0.1, test_coverage=0.98
    )
    print(f"  link failure probability    {probabilities.link_failure_probability:.4f}")
    print(f"  router failure probability  {probabilities.router_failure_probability:.4f}")

    graph = make_arrangement("hexamesh", 19).graph
    print(f"  expected faults on a 19-chiplet HexaMesh: "
          f"{probabilities.expected_faults(graph):.2f}")

    print("\n=== Simulating one yield-sampled fault scenario ===")
    # An immature-process corner (high defect density, weak test coverage,
    # lossy bonding) so the demo draw actually faults something.
    stressed = fault_probabilities_from_yield(
        chiplet_area_mm2=42.0,
        defect_density_per_cm2=0.5,
        test_coverage=0.9,
        per_bond_yield=0.97,
    )
    faults = sample_fault_set(graph, stressed, seed=6)
    print(f"  sampled fault set: {faults.label} "
          f"(links {list(faults.failed_links)}, routers {list(faults.failed_routers)})")
    simulator = NocSimulator(graph, CONFIG, injection_rate=0.1, faults=faults)
    result = simulator.run()
    degraded = simulator.degraded_topology
    if degraded is not None:
        print(f"  degraded topology: {degraded.num_routers} routers, "
              f"{degraded.graph.num_edges} links")
    print(f"  avg packet latency {result.packet_latency.mean:7.2f} cycles, "
          f"delivery ratio {result.measured_delivery_ratio:.2%}")

    print("\n=== Degradation curves: grid vs. brickwall vs. HexaMesh ===")
    sweep = run_resilience_sweep(
        ("grid", "brickwall", "hexamesh"),
        16,
        (0, 1, 2, 4),
        samples=2,
        fault_type="link",
        config=CONFIG,
        injection_rate=0.2,
    )
    print(f"  {'kind':10s} {'failures':>8s} {'latency':>9s} {'vs healthy':>11s} "
          f"{'accepted':>9s} {'delivered':>10s}")
    for kind in sweep.kinds():
        for point in sweep.curve(kind):
            print(f"  {point.kind:10s} {point.num_failures:8d} "
                  f"{point.mean_latency_cycles:9.2f} "
                  f"{point.latency_vs_baseline:10.3f}x "
                  f"{point.accepted_flit_rate:9.4f} "
                  f"{point.delivery_ratio:9.2%}")

    print("\nFault sets are drawn with SHA-256-derived seeds: re-running this "
          "example reproduces identical curves on any machine.")


if __name__ == "__main__":
    main()
