#!/usr/bin/env python3
"""Application workloads: task graphs, chiplet mapping and trace-driven simulation.

This example walks the workload subsystem end to end:

1. generate a DNN-pipeline task graph sized to the chiplet count,
2. map it onto a 19-chiplet HexaMesh with every registered mapper and
   compare the static cost metrics (weighted hop count, max link load),
3. drive the cycle-accurate NoC simulator with the best mapping via the
   TraceTraffic bridge and read off the application-level metrics
   (makespan proxy, per-edge latencies, delivery ratio), and
4. save / reload the task graph as JSON.

Run with:  PYTHONPATH=src python examples/workload_mapping.py
"""

import tempfile
from pathlib import Path

from repro.arrangements.factory import make_arrangement
from repro.io import load_workload_json, save_workload_json
from repro.noc.config import SimulationConfig
from repro.workloads import (
    available_mappers,
    evaluate_mapping,
    make_workload,
    map_workload,
    simulate_workload,
)


def main() -> None:
    num_chiplets = 19
    graph = make_arrangement("hexamesh", num_chiplets).graph
    workload = make_workload("dnn-pipeline", num_tasks=num_chiplets)
    print(f"workload: {workload.name}, {workload.num_tasks} tasks, "
          f"{workload.num_edges} edges, "
          f"critical path {workload.critical_path_weight():g} cycles")

    print(f"\n=== Mapping onto a HexaMesh with {num_chiplets} chiplets ===")
    costs = {}
    for mapper in available_mappers():
        mapping = map_workload(mapper, workload, graph)
        cost = evaluate_mapping(workload, mapping, graph)
        costs[mapper] = (mapping, cost)
        print(f"  {mapper:12s} weighted hops {cost.weighted_hop_count:7.1f}   "
              f"max link load {cost.max_link_load:5.1f}   "
              f"local traffic {cost.local_traffic_fraction:5.1%}")

    best_mapper = min(costs, key=lambda name: costs[name][1].weighted_hop_count)
    mapping, _ = costs[best_mapper]
    print(f"\nbest mapper by weighted hops: {best_mapper}")

    print("\n=== Trace-driven cycle-accurate simulation ===")
    config = SimulationConfig(
        warmup_cycles=300, measurement_cycles=600, drain_cycles=1200
    )
    result = simulate_workload(
        graph, workload, mapping, config=config, injection_rate=0.2
    )
    sim = result.simulation
    print(f"  avg packet latency   {sim.packet_latency.mean:8.2f} cycles")
    print(f"  p99 packet latency   {sim.packet_latency.p99:8.2f} cycles")
    print(f"  accepted throughput  {sim.accepted_flit_rate:8.4f} flits/cycle/endpoint")
    print(f"  delivery ratio       {sim.measured_delivery_ratio:8.2%}")
    print(f"  makespan proxy       {result.makespan_proxy_cycles:8.1f} cycles")
    print(f"  mean edge latency    {result.mean_edge_latency_cycles:8.2f} cycles")

    print("\n  slowest communication edges:")
    measured = [e for e in result.edge_latencies if e.measured_packets > 0]
    for edge in sorted(measured, key=lambda e: -e.mean_latency_cycles)[:5]:
        print(f"    task {edge.source_task:3d} -> task {edge.destination_task:3d}  "
              f"{edge.mean_latency_cycles:7.2f} cycles "
              f"({edge.measured_packets} packets)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dnn_pipeline.json"
        save_workload_json(workload, str(path))
        clone = load_workload_json(str(path))
        print(f"\nJSON round-trip: {path.name} -> {clone.num_tasks} tasks, "
              f"{clone.num_edges} edges (identical: "
              f"{clone.edges() == workload.edges()})")


if __name__ == "__main__":
    main()
