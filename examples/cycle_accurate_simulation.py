#!/usr/bin/env python3
"""Cycle-accurate simulation: latency-vs-load curves for HexaMesh and grid.

This example reproduces the Section VI methodology on a single pair of
design points using the library's BookSim2-substitute simulator: one router
and two endpoints per chiplet, 27-cycle inter-chiplet links, 3-cycle
routers, 8 virtual channels with 8-flit buffers, uniform random traffic.

It sweeps the offered load, prints the latency / accepted-throughput curve
of both designs and converts the sustained throughput into Tb/s with the
D2D link model (Section V).

Run with:  python examples/cycle_accurate_simulation.py
(takes on the order of a minute; reduce CYCLE budget or chiplet counts for
a quicker run)
"""

from repro import ChipletDesign
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator

#: Offered loads (flits per cycle per endpoint) of the sweep.
OFFERED_LOADS = (0.05, 0.15, 0.25, 0.35, 0.50)

#: Shortened simulation phases so the example finishes quickly.
CONFIG = SimulationConfig(warmup_cycles=300, measurement_cycles=600, drain_cycles=600)


def sweep(design: ChipletDesign) -> list[list[float]]:
    """Simulate one design over the offered-load sweep."""
    rows = []
    for load in OFFERED_LOADS:
        simulator = NocSimulator(
            design.arrangement.graph,
            design.simulation_config(CONFIG),
            injection_rate=load,
            traffic="uniform",
        )
        result = simulator.run()
        throughput_tbps = (
            result.accepted_flit_rate * design.full_global_bandwidth_tbps
        )
        rows.append(
            [
                load,
                result.packet_latency.mean,
                result.accepted_flit_rate,
                throughput_tbps,
            ]
        )
    return rows


def main() -> None:
    grid = ChipletDesign.create("grid", 16)
    hexamesh = ChipletDesign.create("hexamesh", 19)

    for design in (grid, hexamesh):
        print(f"\n=== {design.label} ===")
        print(
            f"per-link bandwidth: {design.link_bandwidth_gbps:.0f} Gb/s, "
            f"full global bandwidth: {design.full_global_bandwidth_tbps:.1f} Tb/s, "
            f"analytical zero-load latency: {design.zero_load_latency():.1f} cycles"
        )
        rows = sweep(design)
        print(
            format_table(
                [
                    "offered [flit/cyc/EP]",
                    "avg packet latency [cyc]",
                    "accepted [flit/cyc/EP]",
                    "throughput [Tb/s]",
                ],
                rows,
            )
        )

    print(
        "\nNote: latencies blow up once the offered load crosses the saturation point;"
        "\nthe HexaMesh sustains a higher relative load than the grid, as in Figure 7."
    )


if __name__ == "__main__":
    main()
