#!/usr/bin/env python3
"""Observe one simulation run: per-cycle metrics and a Perfetto trace.

The telemetry subsystem attaches optional observers to any engine run
through a single ``telemetry=`` parameter.  This example pushes the
paper's 61-chiplet HexaMesh past saturation (the Fig. 7 overload
operating point), records

* the five per-cycle metric series (buffer occupancy, link utilisation,
  VC-allocation stalls, in-flight flits, injection backlog),
* the full flit-lifecycle trace (inject, link traverse, VC grant, SA
  grant, eject — one event per step of every flit),

and writes the trace as Chrome trace-event JSON.  Open the output in
https://ui.perfetto.dev (or ``chrome://tracing``) to see every packet as
a span and every router's per-cycle activity on its own track.

Run with:  python examples/telemetry_trace.py
"""

import os
import tempfile

from repro.arrangements.factory import make_arrangement
from repro.evaluation.tables import format_table
from repro.noc.config import SimulationConfig
from repro.noc.simulator import NocSimulator
from repro.telemetry import FlitTracer, MetricsCollector, TelemetrySession

#: Short phases keep the example quick; the trace still records ~100k
#: events because the network saturates.
CONFIG = SimulationConfig(warmup_cycles=100, measurement_cycles=200, drain_cycles=300)

#: Offered load far beyond saturation — the Fig. 7 overload regime.
OVERLOAD_RATE = 1.0


def main() -> None:
    graph = make_arrangement("hexamesh", 61).graph
    session = TelemetrySession(metrics=MetricsCollector(), tracer=FlitTracer())
    simulator = NocSimulator(graph, CONFIG, injection_rate=OVERLOAD_RATE)
    result = simulator.run(engine="vectorized", telemetry=session)

    metrics = session.metrics
    summary = metrics.summary()
    rows = [
        ["avg packet latency [cyc]", round(result.packet_latency.mean, 1)],
        ["accepted [flit/cyc/EP]", round(result.accepted_flit_rate, 4)],
        ["peak buffer occupancy [flits]", int(summary["peak_buffer_occupancy"])],
        ["peak in-flight flits", int(summary["peak_in_flight"])],
        ["peak VC-allocation stalls", int(summary["peak_vc_stalls"])],
        ["mean link flits / cycle", round(summary["mean_link_flits"], 1)],
        ["trace events recorded", len(session.tracer)],
    ]
    print(format_table(["metric", "value"], rows))

    # The backlog series makes the overload visible directly: endpoint
    # source queues grow for as long as sources keep offering load.
    backlog = metrics.injection_backlog
    print(f"\ninjection backlog: cycle 1 -> {backlog[0]}, "
          f"end of measurement -> {backlog[CONFIG.warmup_cycles + CONFIG.measurement_cycles - 1]}")

    output = os.path.join(tempfile.mkdtemp(prefix="hexamesh-trace-"), "overload.json")
    session.tracer.write_chrome_trace(
        output,
        metadata={"design": "hexamesh-61", "rate": OVERLOAD_RATE},
    )
    print(f"\nwrote {output}")
    print("open it in https://ui.perfetto.dev to explore the run")


if __name__ == "__main__":
    main()
